package core

// Pipeline-level pricing: Eq.(4) extended from one multiplication to a lazy
// multi-op plan. A materialize-every-op execution pays the full operand and
// result payload through the driver for every operator — the cumulative form
// of Eq.(4) with the driver as both distributor (P=Q=1) and aggregator. A
// handle-resident execution keeps operands in the workers' block stores, so
// an operator only moves the peer bands it lacks worker→worker, and only the
// final Fetch crosses back to the driver.

// PipeOpKind classifies a lazy-pipeline operator for pricing.
type PipeOpKind int

const (
	// PipeMul is distributed multiplication: every worker needs the whole
	// right operand, so resident execution moves the (W−1)/W of it held by
	// peers.
	PipeMul PipeOpKind = iota
	// PipeTranspose re-bands rows into columns: each worker fetches the
	// column slice of every peer band, again (W−1)/W of the operand.
	PipeTranspose
	// PipeElementwise covers add/sub/hadamard/divelem/scale over
	// co-partitioned operands: resident execution moves nothing.
	PipeElementwise
)

// String names the operator class.
func (k PipeOpKind) String() string {
	switch k {
	case PipeMul:
		return "multiply"
	case PipeTranspose:
		return "transpose"
	case PipeElementwise:
		return "elementwise"
	default:
		return "pipeop(?)"
	}
}

// PipeOp describes one pipeline operator's payloads for pricing. BBytes is
// zero for unary operators.
type PipeOp struct {
	Kind     PipeOpKind
	ABytes   int64
	BBytes   int64
	OutBytes int64
}

// PipelineCost prices a whole lazy pipeline, extending Eq.(4) to cumulative
// wire cost. It returns the modeled driver bytes of materialize-every-op
// execution (each op ships its operands down and its result up through the
// driver) and the modeled wire bytes of handle-resident execution
// (worker→worker band exchange only, plus the final results fetched to the
// driver, finalFetchBytes). workers ≤ 1 means every band is local and
// resident execution moves only the final fetch.
func PipelineCost(ops []PipeOp, workers int, finalFetchBytes int64) (materialized, resident int64) {
	if workers < 1 {
		workers = 1
	}
	w := int64(workers)
	for _, op := range ops {
		materialized += op.ABytes + op.BBytes + op.OutBytes
		switch op.Kind {
		case PipeMul:
			resident += op.BBytes * (w - 1) / w
		case PipeTranspose:
			resident += op.ABytes * (w - 1) / w
		case PipeElementwise:
			// co-partitioned: nothing moves
		}
	}
	resident += finalFetchBytes
	return materialized, resident
}

// PipelinePullCost prices handle-resident execution in pull mode: the band
// exchange moves the same peer bytes PipelineCost's resident estimate
// counts, but pull streams them over all W worker↔worker links at once
// (with dedup against the block cache), so the wall-clock-bounding cost
// divides the peer term by the fan-out. Only the final fetch still crosses
// the driver link at face value. With one worker nothing is fetched from
// peers and the two estimates coincide.
func PipelinePullCost(ops []PipeOp, workers int, finalFetchBytes int64) int64 {
	if workers < 1 {
		workers = 1
	}
	w := int64(workers)
	var peer int64
	for _, op := range ops {
		switch op.Kind {
		case PipeMul:
			peer += op.BBytes * (w - 1) / w
		case PipeTranspose:
			peer += op.ABytes * (w - 1) / w
		case PipeElementwise:
			// co-partitioned: nothing moves
		}
	}
	return peer/w + finalFetchBytes
}
