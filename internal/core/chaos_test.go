package core

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
	"time"

	"distme/internal/bmat"
	"distme/internal/cluster"
	"distme/internal/storage"
)

// chaosEnv builds an env whose cluster injects the given faults with a
// retry budget large enough to outlast the per-task fault bound.
func chaosEnv(t *testing.T, f cluster.Faults) Env {
	t.Helper()
	cfg := cluster.LaptopConfig()
	cfg.LocalWorkers = 4
	cfg.TaskMemBytes = 1 << 30
	cfg.DiskCapacityBytes = 0
	cfg.TaskRetries = 4 // > MaxFaultsPerTask default (3)
	cfg.RetryBackoff = 100 * time.Microsecond
	cfg.Speculation = true
	cfg.Faults = f
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return Env{Cluster: c}
}

// serialize writes a matrix in the deterministic storage format, the
// byte-exact fingerprint the chaos tests compare.
func serialize(t *testing.T, m *bmat.BlockMatrix) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := storage.Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestChaosMatrixBitIdentical is the elastic-execution acceptance test: for
// every fault kind at 5% and 20% rates, across seeds, both CuboidMM and RMM
// must produce output byte-identical to the failure-free run, with retry
// work both present (when rates are high) and bounded.
func TestChaosMatrixBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	a := bmat.RandomDense(rng, 24, 20, 4)
	b := bmat.RandomDense(rng, 20, 16, 4)
	as := bmat.RandomSparse(rng, 24, 20, 4, 0.3)
	params := Params{P: 3, Q: 2, R: 2}

	baseCuboid, err := MultiplyCuboid(a, b, params, chaosEnv(t, cluster.Faults{}))
	if err != nil {
		t.Fatal(err)
	}
	wantCuboid := serialize(t, baseCuboid)
	baseRMM, err := MultiplyRMM(as, b, 6, chaosEnv(t, cluster.Faults{}))
	if err != nil {
		t.Fatal(err)
	}
	wantRMM := serialize(t, baseRMM)

	kinds := []struct {
		name string
		mk   func(rate float64, seed int64) cluster.Faults
	}{
		{"crash", func(r float64, s int64) cluster.Faults { return cluster.Faults{Seed: s, CrashRate: r} }},
		{"oom", func(r float64, s int64) cluster.Faults { return cluster.Faults{Seed: s, OOMRate: r} }},
		{"straggler", func(r float64, s int64) cluster.Faults {
			return cluster.Faults{Seed: s, StragglerRate: r, StragglerDelay: 2 * time.Millisecond}
		}},
		{"fetch", func(r float64, s int64) cluster.Faults { return cluster.Faults{Seed: s, FetchFailRate: r} }},
		{"mixed", func(r float64, s int64) cluster.Faults {
			return cluster.Faults{Seed: s, CrashRate: r, OOMRate: r / 2, StragglerRate: r,
				StragglerDelay: 2 * time.Millisecond, FetchFailRate: r}
		}},
	}
	for _, kind := range kinds {
		for _, rate := range []float64{0.05, 0.2} {
			for seed := int64(1); seed <= 3; seed++ {
				f := kind.mk(rate, seed)

				env := chaosEnv(t, f)
				got, err := MultiplyCuboidCtx(context.Background(), a, b, params, env)
				if err != nil {
					t.Fatalf("cuboid %s rate %v seed %d: %v", kind.name, rate, seed, err)
				}
				if !bytes.Equal(serialize(t, got), wantCuboid) {
					t.Fatalf("cuboid %s rate %v seed %d: output differs from failure-free run",
						kind.name, rate, seed)
				}
				el := env.Cluster.Recorder().Elastic()
				if el.TaskRetries > int64(params.Tasks()*4) {
					t.Fatalf("cuboid %s rate %v seed %d: %d retries exceed budget × tasks",
						kind.name, rate, seed, el.TaskRetries)
				}

				env = chaosEnv(t, f)
				got, err = MultiplyRMMCtx(context.Background(), as, b, 6, env)
				if err != nil {
					t.Fatalf("rmm %s rate %v seed %d: %v", kind.name, rate, seed, err)
				}
				if !bytes.Equal(serialize(t, got), wantRMM) {
					t.Fatalf("rmm %s rate %v seed %d: output differs from failure-free run",
						kind.name, rate, seed)
				}
			}
		}
	}
}

// TestChaosLineageRecomputation drives the fetch-failure rate high enough
// that partitions are declared lost and recomputed, and checks the result
// still matches byte-for-byte.
func TestChaosLineageRecomputation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	a := bmat.RandomDense(rng, 16, 16, 4)
	b := bmat.RandomDense(rng, 16, 12, 4)
	params := Params{P: 2, Q: 2, R: 2}

	want := serialize(t, mustMultiply(t, a, b, params, chaosEnv(t, cluster.Faults{})))

	env := chaosEnv(t, cluster.Faults{Seed: 5, FetchFailRate: 0.9})
	got, err := MultiplyCuboid(a, b, params, env)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialize(t, got), want) {
		t.Fatal("recomputed partials changed the output bytes")
	}
	el := env.Cluster.Recorder().Elastic()
	if el.RecomputedPartials == 0 {
		t.Fatal("fetch-fail rate 0.9 should have forced lineage recomputation")
	}
	if el.FetchRetries == 0 {
		t.Fatal("fetch retries should be counted")
	}
}

func mustMultiply(t *testing.T, a, b *bmat.BlockMatrix, p Params, env Env) *bmat.BlockMatrix {
	t.Helper()
	c, err := MultiplyCuboid(a, b, p, env)
	if err != nil {
		t.Fatal(err)
	}
	return c
}
