// Package core implements the paper's primary contribution: the
// 3-dimensional voxel model of distributed matrix multiplication (§2.2),
// (P,Q,R)-cuboid partitioning with its communication-cost optimizer (§3),
// the (P2,Q2,R2)-subcuboid optimizer for GPU memory (§4.2), and executors
// for CuboidMM and the baseline methods BMM, CPMM and RMM (Table 2).
package core

import (
	"errors"
	"fmt"
)

// Shape describes one multiplication C = A×B in the block model: A is I×K
// blocks, B is K×J blocks, C is I×J blocks. Sizes are payload bytes — stored
// bytes for the inputs (so sparse matrices weigh their compressed size) and
// the worst-case dense estimate for C, exactly as §3.2 prescribes.
type Shape struct {
	I, J, K int
	// ABytes and BBytes are the stored payload sizes of the inputs.
	ABytes, BBytes int64
	// CBytes is the dense worst-case estimate of the output payload.
	CBytes int64
}

// Validate reports a descriptive error for degenerate shapes.
func (s Shape) Validate() error {
	if s.I <= 0 || s.J <= 0 || s.K <= 0 {
		return fmt.Errorf("core: shape: block grid %dx%dx%d must be positive", s.I, s.J, s.K)
	}
	if s.ABytes < 0 || s.BBytes < 0 || s.CBytes < 0 {
		return fmt.Errorf("core: shape: negative payload size")
	}
	return nil
}

// Params is a (P,Q,R)-cuboid partitioning: the number of partitions on the
// i-, j- and k-axes. Special values reproduce the classical methods —
// (I,1,1) is BMM broadcasting B, (1,1,K) is CPMM, (I,J,K) is RMM.
type Params struct {
	P, Q, R int
}

// String renders the parameters as the paper writes them.
func (p Params) String() string { return fmt.Sprintf("(%d,%d,%d)", p.P, p.Q, p.R) }

// Tasks returns P·Q·R, the number of cuboids and hence tasks.
func (p Params) Tasks() int { return p.P * p.Q * p.R }

// valid reports whether p is inside the feasible box for shape s.
func (p Params) valid(s Shape) bool {
	return p.P >= 1 && p.P <= s.I && p.Q >= 1 && p.Q <= s.J && p.R >= 1 && p.R <= s.K
}

// MemBytes evaluates Eq.(3): the average per-task working set
// |A|/(P·R) + |B|/(R·Q) + |C|/(P·Q), in bytes.
func (s Shape) MemBytes(p Params) float64 {
	return float64(s.ABytes)/float64(p.P*p.R) +
		float64(s.BBytes)/float64(p.R*p.Q) +
		float64(s.CBytes)/float64(p.P*p.Q)
}

// CostBytes evaluates Eq.(4): the network communication cost
// Q·|A| + P·|B| + R·|C|, in bytes. The R·|C| term is charged only when R>1;
// with R=1 the local products are final blocks and no aggregation shuffle
// happens (Table 2 marks BMM's aggregation cost "-").
func (s Shape) CostBytes(p Params) float64 {
	cost := float64(p.Q)*float64(s.ABytes) + float64(p.P)*float64(s.BBytes)
	if p.R > 1 {
		cost += float64(p.R) * float64(s.CBytes)
	}
	return cost
}

// WireCost scales the two terms of Eq.(4) for the actual cost of moving a
// byte in each direction. The default (both ratios 1) is the paper's model;
// an opt-in wire encoding (codec.Encoding) makes input bytes cheaper than
// the |A|,|B| payload sizes suggest, and the ratios let the optimizer see
// that. The two directions are priced independently because distnet applies
// encodings only to driver→worker block payloads — the aggregated C
// partials always return as bit-exact fp64 — so a cheap encoding shifts the
// optimum toward plans that repartition more and aggregate less.
type WireCost struct {
	// InputRatio scales the repartition terms Q·|A| + P·|B| (the
	// driver→worker direction the encodings apply to). Values in (0, 1];
	// non-positive means 1.
	InputRatio float64
	// AggRatio scales the aggregation term R·|C| (worker→driver partials).
	// distnet always ships these fp64, so it passes 1; the knob exists so
	// the model prices asymmetric links too. Non-positive means 1.
	AggRatio float64
}

// DefaultWireCost is Eq.(4) exactly as the paper writes it.
func DefaultWireCost() WireCost { return WireCost{InputRatio: 1, AggRatio: 1} }

func (w WireCost) normalized() WireCost {
	if w.InputRatio <= 0 {
		w.InputRatio = 1
	}
	if w.AggRatio <= 0 {
		w.AggRatio = 1
	}
	return w
}

// CostBytesWire evaluates Eq.(4) under a wire-cost scaling:
// InputRatio·(Q·|A| + P·|B|) + AggRatio·R·|C|, the R·|C| term again charged
// only when R>1. With DefaultWireCost it equals CostBytes.
func (s Shape) CostBytesWire(p Params, w WireCost) float64 {
	w = w.normalized()
	cost := w.InputRatio * (float64(p.Q)*float64(s.ABytes) + float64(p.P)*float64(s.BBytes))
	if p.R > 1 {
		cost += w.AggRatio * float64(p.R) * float64(s.CBytes)
	}
	return cost
}

// BMMParams returns the parameters that make CuboidMM behave like BMM
// broadcasting B: (I,1,1).
func (s Shape) BMMParams() Params { return Params{P: s.I, Q: 1, R: 1} }

// CPMMParams returns the CPMM-equivalent parameters (1,1,K).
func (s Shape) CPMMParams() Params { return Params{P: 1, Q: 1, R: s.K} }

// RMMParams returns the RMM-equivalent parameters (I,J,K).
func (s Shape) RMMParams() Params { return Params{P: s.I, Q: s.J, R: s.K} }

// ErrInfeasible reports that no (P,Q,R) satisfies the memory budget — even a
// single voxel exceeds θt, so the multiplication cannot run at all.
var ErrInfeasible = errors.New("core: no cuboid partitioning fits the per-task memory budget")

// Optimize solves Eq.(2): the feasible (P,Q,R) minimizing CostBytes subject
// to MemBytes ≤ θt, pruning partitionings that cannot occupy every task slot
// (P·Q·R ≥ slots, §3.2), with the paper's exceptional case: when the whole
// voxel grid has fewer cells than slots, return (I,J,K) to maximize
// parallelism (which behaves like RMM).
//
// The search is exhaustive over (P,R); for each pair the cost is monotone
// increasing in Q, so the smallest feasible Q is optimal — an O(I·K)
// procedure that returns exactly the argmin of the full O(I·J·K) scan (a
// property the tests verify against a brute-force reference).
func Optimize(s Shape, taskMemBytes int64, slots int) (Params, error) {
	return OptimizeWire(s, taskMemBytes, slots, DefaultWireCost())
}

// OptimizeWire is Optimize with the cost evaluated as CostBytesWire: the
// feasible (P,Q,R) minimizing the wire-priced Eq.(4). The O(I·K) search
// stays valid because scaling by positive ratios keeps the cost monotone
// increasing in Q for fixed (P,R) — minFeasibleQ's argument is unchanged.
// A cheaper InputRatio can genuinely flip the argmin: it discounts the
// repartition terms but not R·|C|, so plans that buy a smaller aggregation
// with more replication win ties they previously lost.
func OptimizeWire(s Shape, taskMemBytes int64, slots int, w WireCost) (Params, error) {
	if err := s.Validate(); err != nil {
		return Params{}, err
	}
	if taskMemBytes <= 0 {
		return Params{}, fmt.Errorf("core: Optimize: task memory budget must be positive, got %d", taskMemBytes)
	}
	if slots < 1 {
		slots = 1
	}
	w = w.normalized()
	// Exceptional case (§3.2): fewer voxels than slots.
	if s.I*s.J*s.K < slots {
		return Params{P: s.I, Q: s.J, R: s.K}, nil
	}

	best := Params{}
	bestCost := 0.0
	found := false
	θ := float64(taskMemBytes)
	for p := 1; p <= s.I; p++ {
		for r := 1; r <= s.K; r++ {
			q, ok := minFeasibleQ(s, p, r, θ, slots)
			if !ok {
				continue
			}
			cand := Params{P: p, Q: q, R: r}
			cost := s.CostBytesWire(cand, w)
			if !found || cost < bestCost || (cost == bestCost && less(cand, best)) {
				best, bestCost, found = cand, cost, true
			}
		}
	}
	if !found {
		return Params{}, fmt.Errorf("%w: grid %dx%dx%d, θt=%d", ErrInfeasible, s.I, s.J, s.K, taskMemBytes)
	}
	return best, nil
}

// minFeasibleQ returns the smallest Q in [1, J] satisfying both the memory
// budget and the parallelism prune for fixed (P, R).
func minFeasibleQ(s Shape, p, r int, θ float64, slots int) (int, bool) {
	// Memory: |A|/(P·R) + (|B|/R + |C|/P)/Q ≤ θ
	head := float64(s.ABytes) / float64(p*r)
	rem := θ - head
	if rem < 0 {
		return 0, false
	}
	q := 1
	num := float64(s.BBytes)/float64(r) + float64(s.CBytes)/float64(p)
	if num > 0 && rem == 0 {
		return 0, false
	}
	if num > 0 {
		q = int(ceilDivFloat(num, rem))
		if q < 1 {
			q = 1
		}
	}
	// Parallelism prune: P·Q·R ≥ slots.
	if pq := ceilDivInt(slots, p*r); pq > q {
		q = pq
	}
	if q > s.J {
		return 0, false
	}
	// Guard against float rounding at the boundary.
	for q <= s.J && s.MemBytes(Params{P: p, Q: q, R: r}) > θ {
		q++
	}
	if q > s.J {
		return 0, false
	}
	return q, true
}

func ceilDivInt(a, b int) int { return (a + b - 1) / b }

func ceilDivFloat(a, b float64) float64 {
	q := a / b
	iq := float64(int64(q))
	if q > iq {
		return iq + 1
	}
	return iq
}

// less orders parameter triples for deterministic tie-breaking: fewer tasks
// first (cheaper scheduling), then lexicographic (P,Q,R).
func less(a, b Params) bool {
	if at, bt := a.Tasks(), b.Tasks(); at != bt {
		return at < bt
	}
	if a.P != b.P {
		return a.P < b.P
	}
	if a.Q != b.Q {
		return a.Q < b.Q
	}
	return a.R < b.R
}

// OptimizeBrute is the direct O(I·J·K) scan of Eq.(2); exported for tests
// and for the Figure 9 parameter-sweep bench, which wants every candidate's
// cost, not just the argmin.
func OptimizeBrute(s Shape, taskMemBytes int64, slots int) (Params, error) {
	if err := s.Validate(); err != nil {
		return Params{}, err
	}
	if slots < 1 {
		slots = 1
	}
	if s.I*s.J*s.K < slots {
		return Params{P: s.I, Q: s.J, R: s.K}, nil
	}
	θ := float64(taskMemBytes)
	best := Params{}
	bestCost := 0.0
	found := false
	for p := 1; p <= s.I; p++ {
		for q := 1; q <= s.J; q++ {
			for r := 1; r <= s.K; r++ {
				cand := Params{P: p, Q: q, R: r}
				if cand.Tasks() < slots {
					continue
				}
				if s.MemBytes(cand) > θ {
					continue
				}
				cost := s.CostBytes(cand)
				if !found || cost < bestCost || (cost == bestCost && less(cand, best)) {
					best, bestCost, found = cand, cost, true
				}
			}
		}
	}
	if !found {
		return Params{}, fmt.Errorf("%w: grid %dx%dx%d, θt=%d", ErrInfeasible, s.I, s.J, s.K, taskMemBytes)
	}
	return best, nil
}
