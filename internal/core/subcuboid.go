package core

import (
	"fmt"
)

// CuboidShape describes a single cuboid from task tm's point of view, the
// input of the subcuboid optimizer (§4.2): the cuboid spans IB×JB×KB voxels
// and holds ABytes of A-side payload (A^m), BBytes of B-side payload (B^m)
// and a CBytes dense output estimate (C^m). Different tasks have different
// sizes and sparsities, so each task optimizes its own subcuboids.
type CuboidShape struct {
	IB, JB, KB     int
	ABytes, BBytes int64
	CBytes         int64
}

// SubParams is a (P2,Q2,R2)-subcuboid partitioning of a cuboid.
type SubParams struct {
	P2, Q2, R2 int
}

// String renders the parameters as the paper writes them.
func (p SubParams) String() string { return fmt.Sprintf("(%d,%d,%d)", p.P2, p.Q2, p.R2) }

// Subcuboids returns P2·Q2·R2, the iterations one task streams to the GPU.
func (p SubParams) Subcuboids() int { return p.P2 * p.Q2 * p.R2 }

// MemBytes evaluates Mem_m(): the per-iteration GPU working set
// |A^m|/(P2·R2) + |B^m|/(R2·Q2) + |C^m|/(P2·Q2), in bytes.
func (c CuboidShape) MemBytes(p SubParams) float64 {
	return float64(c.ABytes)/float64(p.P2*p.R2) +
		float64(c.BBytes)/float64(p.R2*p.Q2) +
		float64(c.CBytes)/float64(p.P2*p.Q2)
}

// CostBytes evaluates Eq.(6): the PCI-E traffic Q2·|A^m| + P2·|B^m| + |C^m|.
// The |C^m| term has no R2 factor because the C buffer stays resident in GPU
// memory across the k-axis iterations and crosses the bus once.
func (c CuboidShape) CostBytes(p SubParams) float64 {
	return float64(p.Q2)*float64(c.ABytes) +
		float64(p.P2)*float64(c.BBytes) +
		float64(c.CBytes)
}

// OptimizeSub solves Eq.(5): the feasible (P2,Q2,R2) minimizing PCI-E cost
// subject to Mem_m ≤ θg. Because Eq.(6) does not depend on R2, for each
// (P2,Q2) the smallest feasible R2 is optimal; the optimizer therefore tends
// to (1,1,R2) partitionings, exactly as §4.2 observes, growing P2 and Q2
// only when C^m alone exceeds GPU memory.
func OptimizeSub(c CuboidShape, gpuMemBytes int64) (SubParams, error) {
	if c.IB <= 0 || c.JB <= 0 || c.KB <= 0 {
		return SubParams{}, fmt.Errorf("core: OptimizeSub: cuboid grid %dx%dx%d must be positive", c.IB, c.JB, c.KB)
	}
	if gpuMemBytes <= 0 {
		return SubParams{}, fmt.Errorf("core: OptimizeSub: GPU memory budget must be positive, got %d", gpuMemBytes)
	}
	θ := float64(gpuMemBytes)
	best := SubParams{}
	bestCost := 0.0
	found := false
	for p2 := 1; p2 <= c.IB; p2++ {
		for q2 := 1; q2 <= c.JB; q2++ {
			r2, ok := minFeasibleR2(c, p2, q2, θ)
			if !ok {
				continue
			}
			cand := SubParams{P2: p2, Q2: q2, R2: r2}
			cost := c.CostBytes(cand)
			if !found || cost < bestCost || (cost == bestCost && lessSub(cand, best)) {
				best, bestCost, found = cand, cost, true
			}
		}
	}
	if !found {
		return SubParams{}, fmt.Errorf("%w: cuboid %dx%dx%d, θg=%d", ErrInfeasible, c.IB, c.JB, c.KB, gpuMemBytes)
	}
	return best, nil
}

// minFeasibleR2 returns the smallest R2 in [1, KB] meeting the GPU memory
// budget for fixed (P2, Q2).
func minFeasibleR2(c CuboidShape, p2, q2 int, θ float64) (int, bool) {
	// |C^m|/(P2·Q2) + (|A^m|/P2 + |B^m|/Q2)/R2 ≤ θ
	head := float64(c.CBytes) / float64(p2*q2)
	rem := θ - head
	if rem < 0 {
		return 0, false
	}
	r2 := 1
	num := float64(c.ABytes)/float64(p2) + float64(c.BBytes)/float64(q2)
	if num > 0 {
		if rem == 0 {
			return 0, false
		}
		r2 = int(ceilDivFloat(num, rem))
		if r2 < 1 {
			r2 = 1
		}
	}
	if r2 > c.KB {
		return 0, false
	}
	for r2 <= c.KB && c.MemBytes(SubParams{P2: p2, Q2: q2, R2: r2}) > θ {
		r2++
	}
	if r2 > c.KB {
		return 0, false
	}
	return r2, true
}

// lessSub tie-breaks subcuboid params: fewer iterations, then lexicographic.
func lessSub(a, b SubParams) bool {
	if ai, bi := a.Subcuboids(), b.Subcuboids(); ai != bi {
		return ai < bi
	}
	if a.P2 != b.P2 {
		return a.P2 < b.P2
	}
	if a.Q2 != b.Q2 {
		return a.Q2 < b.Q2
	}
	return a.R2 < b.R2
}
