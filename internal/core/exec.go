package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"distme/internal/bmat"
	"distme/internal/cluster"
	"distme/internal/matrix"
	"distme/internal/metrics"
	"distme/internal/obs"
	"distme/internal/shuffle"
)

// Env is the execution environment of one distributed multiplication: the
// cluster that runs the tasks, the recorder that the repartition /
// local-multiplication / aggregation steps charge, and the local multiplier
// that computes a cuboid's partial results (CPU by default; the gpu package
// provides the accelerated implementation of §4).
type Env struct {
	Cluster    *cluster.Cluster
	Recorder   *metrics.Recorder
	Multiplier LocalMultiplier
	// VoxelMultiplier computes single block-pair products for the RMM
	// executor, whose hash partitioning prevents cuboid-level batching; the
	// gpu package's BlockLevel provides the degraded GPU path the paper
	// describes for RMM.
	VoxelMultiplier VoxelMultiplier
	// AColocated (BColocated) declares that A (B) is already partitioned in
	// the layout the chosen method wants, so its base copy does not cross
	// the network: one |A| (|B|) is deducted from the repartition charge.
	// This is the matrix-dependency reuse of DMac/MatFast (§7) that the
	// engine's layout tracker drives for iterative queries like GNMF.
	AColocated, BColocated bool
	// BalanceBySparsity schedules cuboids longest-estimated-work-first (the
	// LPT rule) so skewed sparse inputs do not leave one straggler cuboid
	// running after the rest of the wave drains — the load-balancing
	// extension the paper's §8 names as future work.
	BalanceBySparsity bool
	// AggregationWorkers bounds the fan-out of the driver-side partial
	// merge (see aggregate.go); 0 means GOMAXPROCS, 1 forces the
	// sequential merge. Output bits are identical at any width.
	AggregationWorkers int
	// Tracer records phase spans (repartition, local multiply, aggregation)
	// and one task span per committed cuboid; nil disables tracing with no
	// overhead. TraceParent is the span the phase spans parent to (0 roots
	// them).
	Tracer      *obs.Tracer
	TraceParent obs.SpanID
	// Wire prices Eq.(4) for MultiplyAuto's optimizer when the execution
	// path ships blocks under a cheaper wire encoding (see WireCost); the
	// zero value is the paper's unscaled cost.
	Wire WireCost
}

// VoxelMultiplier multiplies one block pair — the local multiplication
// granularity of RMM.
type VoxelMultiplier interface {
	MultiplyPair(a, b matrix.Block) (*matrix.Dense, error)
}

// CPUVoxelMultiplier is the default block-pair multiplier.
type CPUVoxelMultiplier struct{}

// MultiplyPair implements VoxelMultiplier.
func (CPUVoxelMultiplier) MultiplyPair(a, b matrix.Block) (*matrix.Dense, error) {
	return matrix.MulAdd(nil, a, b), nil
}

// voxelMultiplier returns the configured pair multiplier or the CPU default.
func (e *Env) voxelMultiplier() VoxelMultiplier {
	if e.VoxelMultiplier != nil {
		return e.VoxelMultiplier
	}
	return CPUVoxelMultiplier{}
}

// recorder returns the explicit recorder, falling back to the cluster's.
func (e *Env) recorder() *metrics.Recorder {
	if e.Recorder != nil {
		return e.Recorder
	}
	return e.Cluster.Recorder()
}

// multiplier returns the configured local multiplier or the CPU default.
func (e *Env) multiplier() LocalMultiplier {
	if e.Multiplier != nil {
		return e.Multiplier
	}
	return CPUMultiplier{}
}

// Cuboid is one task's work unit D_{p,q,r}: the voxel box
// [ILo,IHi)×[JLo,JHi)×[KLo,KHi) of the 3-dimensional model, with views of
// the A and B source matrices. A local multiplier computes, for every (i,j)
// in the box, the partial block sum over the box's k range.
type Cuboid struct {
	P, Q, R                      int // cuboid index (p,q,r)
	ILo, IHi, JLo, JHi, KLo, KHi int // voxel box, block coordinates
	A, B                         *bmat.BlockMatrix
}

// Name identifies the cuboid in errors and traces.
func (c *Cuboid) Name() string { return fmt.Sprintf("cuboid(%d,%d,%d)", c.P, c.Q, c.R) }

// Voxels returns the number of voxels in the box.
func (c *Cuboid) Voxels() int {
	return (c.IHi - c.ILo) * (c.JHi - c.JLo) * (c.KHi - c.KLo)
}

// Shape summarizes the cuboid for the subcuboid optimizer: grid extents and
// payload sizes of this task's A^m, B^m and dense C^m estimate.
func (c *Cuboid) Shape() CuboidShape {
	return CuboidShape{
		IB:     c.IHi - c.ILo,
		JB:     c.JHi - c.JLo,
		KB:     c.KHi - c.KLo,
		ABytes: c.ABytes(),
		BBytes: c.BBytes(),
		CBytes: c.CDenseBytes(),
	}
}

// ABytes returns the stored payload of the cuboid's A-side blocks.
func (c *Cuboid) ABytes() int64 {
	var n int64
	for i := c.ILo; i < c.IHi; i++ {
		for k := c.KLo; k < c.KHi; k++ {
			if blk := c.A.Block(i, k); blk != nil {
				n += blk.SizeBytes()
			}
		}
	}
	return n
}

// BBytes returns the stored payload of the cuboid's B-side blocks.
func (c *Cuboid) BBytes() int64 {
	var n int64
	for k := c.KLo; k < c.KHi; k++ {
		for j := c.JLo; j < c.JHi; j++ {
			if blk := c.B.Block(k, j); blk != nil {
				n += blk.SizeBytes()
			}
		}
	}
	return n
}

// CDenseBytes returns the dense estimate of the cuboid's C-side payload —
// the worst case the paper uses for intermediate blocks.
func (c *Cuboid) CDenseBytes() int64 {
	var n int64
	for i := c.ILo; i < c.IHi; i++ {
		r, _ := c.A.BlockDims(i, 0)
		for j := c.JLo; j < c.JHi; j++ {
			_, cc := c.B.BlockDims(0, j)
			n += int64(r) * int64(cc) * 8
		}
	}
	return n
}

// MemEstimateBytes is the task working set charged against θt: inputs at
// stored size plus the dense output estimate.
func (c *Cuboid) MemEstimateBytes() int64 {
	return c.ABytes() + c.BBytes() + c.CDenseBytes()
}

// FlopsEstimate predicts the cuboid's arithmetic from its actual blocks:
// for each (i, k) pair of A, 2·work(A_{i,k})·(columns of B in range), with
// work = nnz for sparse blocks and rows×cols for dense ones. Sparsity skew
// across cuboids makes these estimates differ, which is what the §8
// load-balancing extension exploits.
func (c *Cuboid) FlopsEstimate() float64 {
	var bCols float64
	for j := c.JLo; j < c.JHi; j++ {
		_, cc := c.B.BlockDims(0, j)
		bCols += float64(cc)
	}
	var work float64
	for i := c.ILo; i < c.IHi; i++ {
		for k := c.KLo; k < c.KHi; k++ {
			blk := c.A.Block(i, k)
			if blk == nil {
				continue
			}
			if blk.Format() == matrix.FormatDense {
				r, cc := blk.Dims()
				work += float64(r) * float64(cc)
			} else {
				work += float64(blk.NNZ())
			}
		}
	}
	return 2 * work * bCols
}

// LocalMultiplier computes the local multiplication step for one cuboid,
// returning the partial C blocks keyed by global block position. The CPU
// implementation multiplies directly; the GPU implementation (gpu package)
// streams subcuboids through the simulated device per Algorithm 1.
type LocalMultiplier interface {
	Multiply(c *Cuboid) (map[bmat.BlockKey]*matrix.Dense, error)
}

// CPUMultiplier is the LAPACK-style local multiplication: for each (i,j) of
// the cuboid, accumulate A_{i,k}·B_{k,j} over the cuboid's k range.
type CPUMultiplier struct{}

// Multiply implements LocalMultiplier.
func (CPUMultiplier) Multiply(c *Cuboid) (map[bmat.BlockKey]*matrix.Dense, error) {
	out := make(map[bmat.BlockKey]*matrix.Dense, (c.IHi-c.ILo)*(c.JHi-c.JLo))
	for i := c.ILo; i < c.IHi; i++ {
		for j := c.JLo; j < c.JHi; j++ {
			var acc *matrix.Dense
			for k := c.KLo; k < c.KHi; k++ {
				ab := c.A.Block(i, k)
				bb := c.B.Block(k, j)
				if ab == nil || bb == nil {
					continue
				}
				acc = matrix.MulAdd(acc, ab, bb)
			}
			if acc != nil {
				out[bmat.BlockKey{I: i, J: j}] = acc
			}
		}
	}
	return out, nil
}

// ErrShapeMismatch reports operands that are not conformable for the
// requested operation — wrong inner dimensions or differing block sizes.
// Every operand-validation error of the executors wraps it.
var ErrShapeMismatch = errors.New("core: operand shapes are not conformable")

// checkOperands validates conformability of A and B.
func checkOperands(a, b *bmat.BlockMatrix) error {
	if a.Cols != b.Rows {
		return fmt.Errorf("%w: A is %dx%d, B is %dx%d: inner dimensions differ", ErrShapeMismatch, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if a.BlockSize != b.BlockSize {
		return fmt.Errorf("%w: block sizes differ: %d vs %d", ErrShapeMismatch, a.BlockSize, b.BlockSize)
	}
	return nil
}

// ShapeOf summarizes C = A×B for the optimizer: grid extents, stored input
// payloads, dense output estimate — the worst case the paper (like
// SystemML and DMac, §2.2.2) uses for intermediate blocks.
func ShapeOf(a, b *bmat.BlockMatrix) Shape {
	return Shape{
		I:      a.IB,
		J:      b.JB,
		K:      a.JB,
		ABytes: a.StoredBytes(),
		BBytes: b.StoredBytes(),
		CBytes: int64(a.Rows) * int64(b.Cols) * 8,
	}
}

// ShapeOfEstimated is ShapeOf with a probabilistic output-density estimate
// instead of the dense worst case: under the uniform-scatter model, a C
// element is non-zero with probability 1 − (1 − spA·spB)^K over the K inner
// elements, and a sparse C stores ≈16 B per non-zero. For genuinely sparse
// products this admits far coarser (cheaper) cuboid partitionings than the
// worst case — the estimation ablation the paper's §2.2.2 gestures at when
// it notes "the actual cost may be lower".
func ShapeOfEstimated(a, b *bmat.BlockMatrix) Shape {
	s := ShapeOf(a, b)
	spA, spB := a.Sparsity(), b.Sparsity()
	pNZ := 1 - pow1m(spA*spB, a.Cols)
	sparse := int64(pNZ*float64(a.Rows)*float64(b.Cols)) * 16
	if sparse < s.CBytes {
		s.CBytes = sparse
	}
	return s
}

// pow1m computes (1-p)^n stably for small p and large n via exp(n·log1p(-p)).
func pow1m(p float64, n int) float64 {
	if p <= 0 {
		return 1
	}
	if p >= 1 {
		return 0
	}
	return math.Exp(float64(n) * math.Log1p(-p))
}

// MultiplyCuboid executes C = A×B with an explicit (P,Q,R)-cuboid
// partitioning: the three steps of §3.1 — repartition (charged to the
// recorder), local multiplication (one cluster task per cuboid), and
// aggregation across the R cuboids of each (p,q) column (charged and
// reduced). Passing BMMParams/CPMMParams/RMMParams reproduces the classical
// methods' costs exactly (Table 2).
func MultiplyCuboid(a, b *bmat.BlockMatrix, params Params, env Env) (*bmat.BlockMatrix, error) {
	return MultiplyCuboidCtx(context.Background(), a, b, params, env)
}

// MultiplyCuboidCtx is MultiplyCuboid under a context: the cluster's retry,
// backoff and speculation loops observe ctx and abort within one backoff
// step of cancellation, returning an error wrapping cluster.ErrCancelled
// and ctx.Err(). Task bodies commit their partial output under a mutex with
// first-writer-wins, so re-executed and speculative attempts leave output
// bytes identical to a failure-free run.
func MultiplyCuboidCtx(ctx context.Context, a, b *bmat.BlockMatrix, params Params, env Env) (*bmat.BlockMatrix, error) {
	if err := checkOperands(a, b); err != nil {
		return nil, err
	}
	s := ShapeOf(a, b)
	if !params.valid(s) {
		return nil, fmt.Errorf("core: multiply: params %v outside grid %dx%dx%d", params, s.I, s.J, s.K)
	}
	rec := env.recorder()
	mult := env.multiplier()

	// ---- Matrix repartition step -------------------------------------
	// Build the P·Q·R cuboids and charge each one's input payload: every A
	// block lands in exactly Q cuboids and every B block in exactly P, so
	// the total equals Eq.(4)'s Q·|A| + P·|B| term exactly.
	start := time.Now()
	rsp := env.Tracer.Start(env.TraceParent, "repartition", obs.KindDriver)
	cuboids := make([]*Cuboid, 0, params.Tasks())
	var repartitionBytes int64
	for p := 0; p < params.P; p++ {
		ilo, ihi := shuffle.GridSpan(p, s.I, params.P)
		for q := 0; q < params.Q; q++ {
			jlo, jhi := shuffle.GridSpan(q, s.J, params.Q)
			for r := 0; r < params.R; r++ {
				klo, khi := shuffle.GridSpan(r, s.K, params.R)
				c := &Cuboid{
					P: p, Q: q, R: r,
					ILo: ilo, IHi: ihi, JLo: jlo, JHi: jhi, KLo: klo, KHi: khi,
					A: a, B: b,
				}
				if c.Voxels() == 0 {
					// Ceil-division spans can leave trailing tiles empty
					// (e.g. 10 blocks over 7 partitions); they carry no
					// work and no data.
					continue
				}
				repartitionBytes += c.ABytes() + c.BBytes()
				cuboids = append(cuboids, c)
			}
		}
	}
	if env.AColocated {
		repartitionBytes -= a.StoredBytes()
	}
	if env.BColocated {
		repartitionBytes -= b.StoredBytes()
	}
	if repartitionBytes < 0 {
		repartitionBytes = 0
	}
	rec.AddBytes(metrics.StepRepartition, repartitionBytes)
	if err := env.Cluster.ChargeSpill(repartitionBytes); err != nil {
		endSpanErr(rsp, err)
		return nil, err
	}
	rec.AddDuration(metrics.StepRepartition, time.Since(start))
	rsp.AddBytes(repartitionBytes)
	rsp.End()

	// ---- Local multiplication step -----------------------------------
	start = time.Now()
	lsp := env.Tracer.Start(env.TraceParent, "local-multiply", obs.KindDriver)
	if env.BalanceBySparsity {
		sortCuboidsByWork(cuboids)
	}
	partials := make([]map[bmat.BlockKey]*matrix.Dense, len(cuboids))
	var commitMu sync.Mutex
	tasks := make([]cluster.Task, len(cuboids))
	for idx, c := range cuboids {
		idx, c := idx, c
		tasks[idx] = cluster.Task{
			Name:        c.Name(),
			MemEstimate: c.MemEstimateBytes(),
			Fn: func() error {
				attemptStart := time.Now()
				out, err := mult.Multiply(c)
				if err != nil {
					return err
				}
				// First-writer-wins commit: a speculative copy losing the
				// race discards its (identical) result, so concurrent
				// attempts never double-publish. Only the winning attempt
				// records a task span, keeping the invariant of exactly one
				// span per cuboid across retries and speculation.
				commitMu.Lock()
				if partials[idx] == nil {
					partials[idx] = out
					if env.Tracer.Enabled() {
						env.Tracer.AddCompleted(obs.SpanData{
							Parent: lsp.ID(),
							Name:   "task.multiply",
							Kind:   obs.KindTask,
							Worker: c.Name(),
							P:      c.P, Q: c.Q, R: c.R,
							Start: attemptStart, End: time.Now(),
						})
					}
				} else {
					releasePartialMap(out)
				}
				commitMu.Unlock()
				return nil
			},
		}
	}
	if err := env.Cluster.RunCtx(ctx, tasks); err != nil {
		endSpanErr(lsp, err)
		return nil, err
	}
	if err := recoverCuboidPartials(ctx, env, lsp.ID(), cuboids, partials, mult); err != nil {
		endSpanErr(lsp, err)
		return nil, err
	}
	rec.AddDuration(metrics.StepLocalMultiply, time.Since(start))
	lsp.End()

	// ---- Matrix aggregation step -------------------------------------
	// With R = 1 the local products are final blocks and no shuffle occurs
	// (BMM's "-" in Table 2). With R > 1 every partial block crosses the
	// shuffle, totalling R·|C| for dense partials — Eq.(4)'s last term.
	// Intermediate blocks are serialized for the shuffle in their compact
	// form: a mostly-zero partial travels as CSR (the format decision
	// SystemML makes per block), which is why the actual aggregation cost
	// of sparse products runs below the worst-case R·|C| (§2.2.2).
	// The merge itself is sharded across workers (aggregate.go) with
	// bit-identical results at any width.
	start = time.Now()
	asp := env.Tracer.Start(env.TraceParent, "aggregate", obs.KindDriver)
	out := bmat.New(a.Rows, b.Cols, a.BlockSize)
	var sizeOf func(*matrix.Dense) int64
	if params.R > 1 {
		sizeOf = compactSizeBytes
	}
	aggregationBytes := aggregateBlockPartials(out, partials, env.aggWorkers(), sizeOf)
	compactOutput(out)
	rec.AddBytes(metrics.StepAggregation, aggregationBytes)
	if aggregationBytes > 0 {
		if err := env.Cluster.ChargeSpill(aggregationBytes); err != nil {
			endSpanErr(asp, err)
			return nil, err
		}
	}
	rec.AddDuration(metrics.StepAggregation, time.Since(start))
	asp.AddBytes(aggregationBytes)
	asp.End()
	return out, nil
}

// endSpanErr annotates a span with an error and ends it (phase spans on
// early-return paths).
func endSpanErr(sp obs.Span, err error) {
	if sp.Active() {
		sp.SetAttr("error", err.Error())
	}
	sp.End()
}

// sparseFormatThreshold is the density below which a result block is stored
// (and shipped) in CSR rather than dense: 16 B/nnz beats 8 B/element below
// one half, with margin for the row-pointer array.
const sparseFormatThreshold = 0.4

// compactSizeBytes is the serialized size of a block in its best format.
func compactSizeBytes(d *matrix.Dense) int64 {
	if matrix.Sparsity(d) < sparseFormatThreshold {
		nnz := int64(d.NNZ())
		sparse := nnz*16 + int64(d.RowsN+1)*8
		if sparse < d.SizeBytes() {
			return sparse
		}
	}
	return d.SizeBytes()
}

// compactOutput converts low-density dense result blocks to CSR — the
// output-format selection step, so downstream operators see sparse blocks
// when the product really is sparse.
func compactOutput(m *bmat.BlockMatrix) {
	for _, key := range m.Keys() {
		blk := m.Block(key.I, key.J)
		d, ok := blk.(*matrix.Dense)
		if !ok {
			continue
		}
		if matrix.Sparsity(d) < sparseFormatThreshold {
			csr := matrix.NewCSRFromDense(d)
			if csr.SizeBytes() < d.SizeBytes() {
				m.SetBlock(key.I, key.J, csr)
				// The dense buffer was typically a pooled MulAdd
				// accumulator; the CSR copy replaces it, so recycle.
				matrix.PutDense(d)
			}
		}
	}
}

// sortCuboidsByWork orders cuboids by descending flops estimate
// (longest-processing-time-first), tie-broken by index for determinism.
func sortCuboidsByWork(cs []*Cuboid) {
	sort.SliceStable(cs, func(a, b int) bool {
		wa, wb := cs[a].FlopsEstimate(), cs[b].FlopsEstimate()
		if wa != wb {
			return wa > wb
		}
		ka := [3]int{cs[a].P, cs[a].Q, cs[a].R}
		kb := [3]int{cs[b].P, cs[b].Q, cs[b].R}
		for i := range ka {
			if ka[i] != kb[i] {
				return ka[i] < kb[i]
			}
		}
		return false
	})
}

// keyedBlock pairs a key and block for deterministic iteration.
type keyedBlock struct {
	key   bmat.BlockKey
	block *matrix.Dense
}

// sortedPartials returns the map's entries ordered by (I, J) so aggregation
// is deterministic regardless of map iteration order.
func sortedPartials(m map[bmat.BlockKey]*matrix.Dense) []keyedBlock {
	out := make([]keyedBlock, 0, len(m))
	for k, v := range m {
		out = append(out, keyedBlock{k, v})
	}
	// insertion sort: partial maps are small per task.
	for i := 1; i < len(out); i++ {
		v := out[i]
		j := i - 1
		for j >= 0 && (out[j].key.I > v.key.I || (out[j].key.I == v.key.I && out[j].key.J > v.key.J)) {
			out[j+1] = out[j]
			j--
		}
		out[j+1] = v
	}
	return out
}

// MultiplyBMM runs Broadcast Matrix Multiplication (§2.2.1): row-partition A
// over T = I tasks and broadcast B — CuboidMM with (I,1,1).
func MultiplyBMM(a, b *bmat.BlockMatrix, env Env) (*bmat.BlockMatrix, error) {
	return MultiplyCuboidCtx(context.Background(), a, b, ShapeOf(a, b).BMMParams(), env)
}

// MultiplyBMMCtx is MultiplyBMM under a context.
func MultiplyBMMCtx(ctx context.Context, a, b *bmat.BlockMatrix, env Env) (*bmat.BlockMatrix, error) {
	return MultiplyCuboidCtx(ctx, a, b, ShapeOf(a, b).BMMParams(), env)
}

// MultiplyCPMM runs Cross-Product Matrix Multiplication (§2.2.2):
// column-partition A, row-partition B over T = K tasks, aggregate T·|C| —
// CuboidMM with (1,1,K).
func MultiplyCPMM(a, b *bmat.BlockMatrix, env Env) (*bmat.BlockMatrix, error) {
	return MultiplyCuboidCtx(context.Background(), a, b, ShapeOf(a, b).CPMMParams(), env)
}

// MultiplyCPMMCtx is MultiplyCPMM under a context.
func MultiplyCPMMCtx(ctx context.Context, a, b *bmat.BlockMatrix, env Env) (*bmat.BlockMatrix, error) {
	return MultiplyCuboidCtx(ctx, a, b, ShapeOf(a, b).CPMMParams(), env)
}

// MultiplyRMM runs Replication-based Matrix Multiplication (§2.2.3):
// replicate every A block J times and every B block I times, hash-shuffle
// voxels over tasks, multiply block pairs, then shuffle K·|C| intermediate
// blocks by (i,j). T is the task count; the paper's best practical setting
// is I·J (pass 0 to use it). Unlike the cuboid path, tasks hold
// non-consecutive voxels, so no communication sharing is possible and every
// voxel pays full replication — that difference is the point of Figure 6.
func MultiplyRMM(a, b *bmat.BlockMatrix, tasks int, env Env) (*bmat.BlockMatrix, error) {
	return MultiplyRMMCtx(context.Background(), a, b, tasks, env)
}

// MultiplyRMMCtx is MultiplyRMM under a context, with the same elastic
// semantics as MultiplyCuboidCtx.
func MultiplyRMMCtx(ctx context.Context, a, b *bmat.BlockMatrix, tasks int, env Env) (*bmat.BlockMatrix, error) {
	if err := checkOperands(a, b); err != nil {
		return nil, err
	}
	s := ShapeOf(a, b)
	if tasks <= 0 {
		tasks = s.I * s.J
	}
	rec := env.recorder()

	// ---- Matrix repartition step: replicate and hash-shuffle ----------
	start := time.Now()
	rsp := env.Tracer.Start(env.TraceParent, "repartition", obs.KindDriver)
	groups := make([][]bmat.VoxelKey, tasks)
	var repartitionBytes int64
	hp := shuffle.HashPartitioner{N: tasks}
	memEstimates := make([]int64, tasks)
	for i := 0; i < s.I; i++ {
		for j := 0; j < s.J; j++ {
			for k := 0; k < s.K; k++ {
				ab := a.Block(i, k)
				bb := b.Block(k, j)
				// Replication cost is charged for every voxel the block is
				// copied to, even when a block is zero the paper's formula
				// counts stored payload only, so nil blocks cost nothing.
				var vbytes int64
				if ab != nil {
					vbytes += ab.SizeBytes()
				}
				if bb != nil {
					vbytes += bb.SizeBytes()
				}
				repartitionBytes += vbytes
				t := hp.PartitionVoxel(bmat.VoxelKey{I: i, J: j, K: k})
				r, _ := a.BlockDims(i, 0)
				_, cc := b.BlockDims(0, j)
				// A task streams its voxels from the shuffle one at a time,
				// so its resident set is the largest single voxel — this is
				// what lets RMM scale to any matrix size (§2.2.3).
				if v := vbytes + int64(r)*int64(cc)*8; v > memEstimates[t] {
					memEstimates[t] = v
				}
				if ab != nil && bb != nil {
					groups[t] = append(groups[t], bmat.VoxelKey{I: i, J: j, K: k})
				}
			}
		}
	}
	rec.AddBytes(metrics.StepRepartition, repartitionBytes)
	if err := env.Cluster.ChargeSpill(repartitionBytes); err != nil {
		endSpanErr(rsp, err)
		return nil, err
	}
	rec.AddDuration(metrics.StepRepartition, time.Since(start))
	rsp.AddBytes(repartitionBytes)
	rsp.End()

	// ---- Local multiplication step: one block pair per voxel ----------
	start = time.Now()
	lsp := env.Tracer.Start(env.TraceParent, "local-multiply", obs.KindDriver)
	vm := env.voxelMultiplier()
	partials := make([]map[bmat.VoxelKey]*matrix.Dense, tasks)
	var commitMu sync.Mutex
	computeGroup := func(t int) (map[bmat.VoxelKey]*matrix.Dense, error) {
		out := make(map[bmat.VoxelKey]*matrix.Dense, len(groups[t]))
		for _, vk := range groups[t] {
			ab := a.Block(vk.I, vk.K)
			bb := b.Block(vk.K, vk.J)
			prod, err := vm.MultiplyPair(ab, bb)
			if err != nil {
				releaseVoxelPartialMap(out)
				return nil, err
			}
			out[vk] = prod
		}
		return out, nil
	}
	var clusterTasks []cluster.Task
	var taskGroup []int
	for t := 0; t < tasks; t++ {
		t := t
		if len(groups[t]) == 0 {
			continue
		}
		taskGroup = append(taskGroup, t)
		clusterTasks = append(clusterTasks, cluster.Task{
			Name:        fmt.Sprintf("rmm-task(%d)", t),
			MemEstimate: memEstimates[t],
			Fn: func() error {
				attemptStart := time.Now()
				out, err := computeGroup(t)
				if err != nil {
					return err
				}
				commitMu.Lock()
				if partials[t] == nil {
					partials[t] = out
					if env.Tracer.Enabled() {
						env.Tracer.AddCompleted(obs.SpanData{
							Parent: lsp.ID(),
							Name:   "task.multiply",
							Kind:   obs.KindTask,
							Worker: fmt.Sprintf("rmm-task(%d)", t),
							P:      -1, Q: -1, R: -1,
							Start: attemptStart, End: time.Now(),
						})
					}
				} else {
					releaseVoxelPartialMap(out)
				}
				commitMu.Unlock()
				return nil
			},
		})
	}
	if err := env.Cluster.RunCtx(ctx, clusterTasks); err != nil {
		endSpanErr(lsp, err)
		return nil, err
	}
	if err := recoverVoxelPartials(ctx, env, lsp.ID(), taskGroup, partials, computeGroup); err != nil {
		endSpanErr(lsp, err)
		return nil, err
	}
	rec.AddDuration(metrics.StepLocalMultiply, time.Since(start))
	lsp.End()

	// ---- Matrix aggregation step: shuffle K·|C| partials by (i,j) ------
	// Voxel partials are merged with the same sharded parallel reduce as
	// the cuboid path; every partial block crosses the shuffle at stored
	// size.
	start = time.Now()
	asp := env.Tracer.Start(env.TraceParent, "aggregate", obs.KindDriver)
	out := bmat.New(a.Rows, b.Cols, a.BlockSize)
	aggregationBytes := aggregateVoxelPartials(out, partials, env.aggWorkers())
	rec.AddBytes(metrics.StepAggregation, aggregationBytes)
	if err := env.Cluster.ChargeSpill(aggregationBytes); err != nil {
		endSpanErr(asp, err)
		return nil, err
	}
	rec.AddDuration(metrics.StepAggregation, time.Since(start))
	asp.AddBytes(aggregationBytes)
	asp.End()
	return out, nil
}

type keyedVoxelBlock struct {
	key   bmat.VoxelKey
	block *matrix.Dense
}

func sortedVoxelPartials(m map[bmat.VoxelKey]*matrix.Dense) []keyedVoxelBlock {
	out := make([]keyedVoxelBlock, 0, len(m))
	for k, v := range m {
		out = append(out, keyedVoxelBlock{k, v})
	}
	for i := 1; i < len(out); i++ {
		v := out[i]
		j := i - 1
		for j >= 0 && voxelLess(v.key, out[j].key) {
			out[j+1] = out[j]
			j--
		}
		out[j+1] = v
	}
	return out
}

func voxelLess(a, b bmat.VoxelKey) bool {
	if a.I != b.I {
		return a.I < b.I
	}
	if a.J != b.J {
		return a.J < b.J
	}
	return a.K < b.K
}

// MultiplyAuto optimizes (P,Q,R) for the cluster's budgets (Eq. 2) and runs
// CuboidMM with the result. This is DistME's default multiplication path.
func MultiplyAuto(a, b *bmat.BlockMatrix, env Env) (*bmat.BlockMatrix, Params, error) {
	return MultiplyAutoCtx(context.Background(), a, b, env)
}

// MultiplyAutoCtx is MultiplyAuto under a context.
func MultiplyAutoCtx(ctx context.Context, a, b *bmat.BlockMatrix, env Env) (*bmat.BlockMatrix, Params, error) {
	s := ShapeOf(a, b)
	cfg := env.Cluster.Config()
	params, err := OptimizeWire(s, cfg.TaskMemBytes, cfg.Slots(), env.Wire)
	if err != nil {
		return nil, Params{}, err
	}
	c, err := MultiplyCuboidCtx(ctx, a, b, params, env)
	return c, params, err
}
