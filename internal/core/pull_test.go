package core

import (
	"math/rand"
	"testing"
)

// TestCostBytesPullOneWorkerIdentity: with one worker and a cold seed, the
// pull cost IS Eq.(4) — the seed plus the full replica traffic over a single
// link is exactly Q·|A| + P·|B| (+ R·|C|), bit for bit. That identity is the
// sanity anchor for the fan-out division: pull never moves fewer total
// bytes, it only spreads them.
func TestCostBytesPullOneWorkerIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pc := PullCost{Workers: 1}
	for trial := 0; trial < 200; trial++ {
		s := Shape{
			I: 1 + rng.Intn(10), J: 1 + rng.Intn(10), K: 1 + rng.Intn(10),
			ABytes: rng.Int63n(1 << 20), BBytes: rng.Int63n(1 << 20), CBytes: rng.Int63n(1 << 20),
		}
		p := Params{P: 1 + rng.Intn(s.I), Q: 1 + rng.Intn(s.J), R: 1 + rng.Intn(s.K)}
		if got, want := s.CostBytesPull(p, DefaultWireCost(), pc), s.CostBytes(p); got != want {
			t.Fatalf("shape %+v params %v: CostBytesPull(W=1) %v != CostBytes %v", s, p, got, want)
		}
		// The zero value must normalize to one worker too.
		if got, want := s.CostBytesPull(p, WireCost{}, PullCost{}), s.CostBytes(p); got != want {
			t.Fatalf("zero PullCost not normalized: %v != %v", got, want)
		}
	}
}

// TestOptimizePullMatchesBrute: for random shapes, prices and fan-outs, the
// fast O(I·K) search must return exactly the brute-force argmin — the
// pull cost stays monotone in Q, so minFeasibleQ's argument carries over.
func TestOptimizePullMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ratios := []WireCost{
		DefaultWireCost(),
		{InputRatio: 0.5, AggRatio: 1},
		{InputRatio: 0.25, AggRatio: 0.75},
	}
	for trial := 0; trial < 150; trial++ {
		s := Shape{
			I: 1 + rng.Intn(9), J: 1 + rng.Intn(9), K: 1 + rng.Intn(9),
			ABytes: 1 + rng.Int63n(1<<26), BBytes: 1 + rng.Int63n(1<<26), CBytes: 1 + rng.Int63n(1<<26),
		}
		θ := 1 + rng.Int63n(1<<25)
		slots := 1 + rng.Intn(6)
		w := ratios[trial%len(ratios)]
		pc := PullCost{Workers: 1 + rng.Intn(8), SeedResident: trial%2 == 0}
		want, werr := OptimizePullBrute(s, θ, slots, w, pc)
		got, err := OptimizePull(s, θ, slots, w, pc)
		if werr != nil {
			if err == nil {
				t.Fatalf("shape %+v θ=%d: brute infeasible but OptimizePull returned %v", s, θ, got)
			}
			continue
		}
		if err != nil {
			t.Fatalf("shape %+v θ=%d: %v", s, θ, err)
		}
		if got != want {
			t.Fatalf("shape %+v θ=%d slots=%d w=%+v pc=%+v: OptimizePull %v != brute %v", s, θ, slots, w, pc, got, want)
		}
	}
}

// TestOptimizeTransferSelectsPullIffCheaper holds the Auto contract from
// the acceptance criteria: across random shapes and fan-outs, the mode
// OptimizeTransfer picks is pull exactly when the pull-mode Eq.(4) term of
// its own argmin is strictly cheaper than the push-mode argmin's — both
// argmins verified against their brute references.
func TestOptimizeTransferSelectsPullIffCheaper(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sawPull, sawPush := false, false
	for trial := 0; trial < 200; trial++ {
		s := Shape{
			I: 1 + rng.Intn(8), J: 1 + rng.Intn(8), K: 1 + rng.Intn(8),
			ABytes: 1 + rng.Int63n(1<<24), BBytes: 1 + rng.Int63n(1<<24), CBytes: 1 + rng.Int63n(1<<24),
		}
		θ := 1 + rng.Int63n(1<<24)
		slots := 1 + rng.Intn(6)
		w := DefaultWireCost()
		pc := PullCost{Workers: 1 + rng.Intn(8), SeedResident: trial%3 != 0}

		push, perr := OptimizeWire(s, θ, slots, w)
		pull, qerr := OptimizePull(s, θ, slots, w, pc)
		got, mode, err := OptimizeTransfer(s, θ, slots, w, pc)
		if perr != nil || qerr != nil {
			if err == nil {
				t.Fatalf("shape %+v θ=%d: infeasible but OptimizeTransfer returned %v/%v", s, θ, got, mode)
			}
			continue
		}
		if err != nil {
			t.Fatalf("shape %+v θ=%d: %v", s, θ, err)
		}
		pullCheaper := s.CostBytesPull(pull, w, pc) < s.CostBytesWire(push, w)
		if pullCheaper != (mode == TransferPull) {
			t.Fatalf("shape %+v pc=%+v: pull cheaper=%v but mode=%v", s, pc, pullCheaper, mode)
		}
		if mode == TransferPull {
			if got != pull {
				t.Fatalf("pull mode returned params %v, want pull argmin %v", got, pull)
			}
			sawPull = true
		} else {
			if got != push {
				t.Fatalf("push mode returned params %v, want push argmin %v", got, push)
			}
			sawPush = true
		}
		// Cross-check both argmins against the brute scans.
		if bp, ok := bruteWire(s, θ, slots, w); !ok || bp != push {
			t.Fatalf("push brute %v, fast %v", bp, push)
		}
		if bq, err := OptimizePullBrute(s, θ, slots, w, pc); err != nil || bq != pull {
			t.Fatalf("pull brute %v (%v), fast %v", bq, err, pull)
		}
	}
	if !sawPull || !sawPush {
		t.Fatalf("trials never exercised both modes: pull=%v push=%v", sawPull, sawPush)
	}
}

// TestOptimizeTransferWarmOperandsPreferPull pins the concrete case the
// bench gate relies on: with operands resident as handles and four
// workers, any replicated plan's driver traffic collapses to the
// aggregation term, so Auto must pick pull.
func TestOptimizeTransferWarmOperandsPreferPull(t *testing.T) {
	s := Shape{I: 4, J: 4, K: 4, ABytes: 4 << 20, BBytes: 4 << 20, CBytes: 4 << 20}
	pc := PullCost{Workers: 4, SeedResident: true}
	_, mode, err := OptimizeTransfer(s, 8<<20, 4, DefaultWireCost(), pc)
	if err != nil {
		t.Fatal(err)
	}
	if mode != TransferPull {
		t.Fatalf("warm 4-worker plan chose %v, want pull", mode)
	}
	// With one worker and a cold seed, pull holds no edge; ties keep push.
	_, mode, err = OptimizeTransfer(s, 8<<20, 1, DefaultWireCost(), PullCost{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if mode != TransferPush {
		t.Fatalf("one-worker cold plan chose %v, want push", mode)
	}
}

// TestPipelinePullCost pins the fan-out division against PipelineCost's
// resident estimate on a hand-checked plan.
func TestPipelinePullCost(t *testing.T) {
	ops := []PipeOp{
		{Kind: PipeMul, ABytes: 1000, BBytes: 4000, OutBytes: 2000},
		{Kind: PipeTranspose, ABytes: 2000, OutBytes: 2000},
		{Kind: PipeElementwise, ABytes: 2000, BBytes: 2000, OutBytes: 2000},
	}
	_, res := PipelineCost(ops, 4, 500)
	wantPeer := int64(4000*3/4 + 2000*3/4) // 3000 + 1500
	if res != wantPeer+500 {
		t.Fatalf("resident estimate %d, want %d", res, wantPeer+500)
	}
	if got, want := PipelinePullCost(ops, 4, 500), wantPeer/4+500; got != want {
		t.Fatalf("PipelinePullCost %d, want %d", got, want)
	}
	// One worker: no peer traffic either way.
	if got := PipelinePullCost(ops, 1, 500); got != 500 {
		t.Fatalf("one-worker pull cost %d, want 500", got)
	}
	if got := PipelinePullCost(nil, 0, 0); got != 0 {
		t.Fatalf("empty plan pull cost %d, want 0", got)
	}
}

// TestTransferStringAndValid covers the mode enum's string forms.
func TestTransferStringAndValid(t *testing.T) {
	for _, tc := range []struct {
		tr Transfer
		s  string
		ok bool
	}{
		{TransferAuto, "auto", true},
		{TransferPush, "push", true},
		{TransferPull, "pull", true},
		{Transfer(9), "transfer(9)", false},
	} {
		if tc.tr.String() != tc.s || tc.tr.Valid() != tc.ok {
			t.Fatalf("Transfer %d: got (%q,%v), want (%q,%v)", int(tc.tr), tc.tr.String(), tc.tr.Valid(), tc.s, tc.ok)
		}
	}
}
