package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func timeNow() time.Time          { return time.Now() }
func timeSince(t time.Time) int64 { return int64(time.Since(t)) }

func TestParamsTasksAndString(t *testing.T) {
	p := Params{P: 2, Q: 3, R: 4}
	if p.Tasks() != 24 {
		t.Fatalf("Tasks = %d", p.Tasks())
	}
	if p.String() != "(2,3,4)" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestMemBytesEquation3(t *testing.T) {
	// |A|/(P·R) + |B|/(R·Q) + |C|/(P·Q)
	s := Shape{I: 4, J: 6, K: 8, ABytes: 4800, BBytes: 2400, CBytes: 1200}
	p := Params{P: 2, Q: 3, R: 4}
	want := 4800.0/8 + 2400.0/12 + 1200.0/6
	if got := s.MemBytes(p); got != want {
		t.Fatalf("MemBytes = %g, want %g", got, want)
	}
}

func TestCostBytesEquation4(t *testing.T) {
	s := Shape{I: 4, J: 6, K: 8, ABytes: 100, BBytes: 200, CBytes: 300}
	p := Params{P: 2, Q: 3, R: 4}
	want := 3.0*100 + 2.0*200 + 4.0*300
	if got := s.CostBytes(p); got != want {
		t.Fatalf("CostBytes = %g, want %g", got, want)
	}
	// R=1: no aggregation term (Table 2's "-" for BMM).
	p1 := Params{P: 2, Q: 3, R: 1}
	if got := s.CostBytes(p1); got != 3.0*100+2.0*200 {
		t.Fatalf("CostBytes R=1 = %g, want %g", got, 3.0*100+2.0*200)
	}
}

// TestGeneralizationParams checks §3.1's claim: the classical methods are
// the corner parameterizations of CuboidMM.
func TestGeneralizationParams(t *testing.T) {
	s := Shape{I: 4, J: 6, K: 8, ABytes: 10, BBytes: 20, CBytes: 30}
	if s.BMMParams() != (Params{P: 4, Q: 1, R: 1}) {
		t.Fatal("BMM params wrong")
	}
	if s.CPMMParams() != (Params{P: 1, Q: 1, R: 8}) {
		t.Fatal("CPMM params wrong")
	}
	if s.RMMParams() != (Params{P: 4, Q: 6, R: 8}) {
		t.Fatal("RMM params wrong")
	}
	// Table 2 rows fall out of Eq.(4):
	// BMM: |A| + T·|B| with T = I.
	if got := s.CostBytes(s.BMMParams()); got != 10+4*20 {
		t.Fatalf("BMM cost = %g", got)
	}
	// CPMM: |A| + |B| + T·|C| with T = K.
	if got := s.CostBytes(s.CPMMParams()); got != 10+20+8*30 {
		t.Fatalf("CPMM cost = %g", got)
	}
	// RMM: J·|A| + I·|B| + K·|C|.
	if got := s.CostBytes(s.RMMParams()); got != 6*10+4*20+8*30 {
		t.Fatalf("RMM cost = %g", got)
	}
}

// TestOptimizeMatchesBruteForce is the optimizer's core property: the fast
// O(I·K) search returns exactly the brute-force argmin of Eq.(2).
func TestOptimizeMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := Shape{
			I:      1 + rng.Intn(12),
			J:      1 + rng.Intn(12),
			K:      1 + rng.Intn(12),
			ABytes: int64(1 + rng.Intn(100000)),
			BBytes: int64(1 + rng.Intn(100000)),
			CBytes: int64(1 + rng.Intn(100000)),
		}
		θ := int64(1 + rng.Intn(200000))
		slots := 1 + rng.Intn(30)
		got, gerr := Optimize(s, θ, slots)
		want, werr := OptimizeBrute(s, θ, slots)
		if (gerr == nil) != (werr == nil) {
			return false
		}
		if gerr != nil {
			return errors.Is(gerr, ErrInfeasible) && errors.Is(werr, ErrInfeasible)
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeRespectsMemoryBudget(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := Shape{
			I: 1 + rng.Intn(20), J: 1 + rng.Intn(20), K: 1 + rng.Intn(20),
			ABytes: int64(1 + rng.Intn(1<<20)),
			BBytes: int64(1 + rng.Intn(1<<20)),
			CBytes: int64(1 + rng.Intn(1<<20)),
		}
		θ := int64(1 + rng.Intn(1<<21))
		slots := 1 + rng.Intn(16)
		p, err := Optimize(s, θ, slots)
		if err != nil {
			return errors.Is(err, ErrInfeasible)
		}
		if s.I*s.J*s.K < slots {
			// Exceptional case returns (I,J,K) without the memory check.
			return p == (Params{P: s.I, Q: s.J, R: s.K})
		}
		return s.MemBytes(p) <= float64(θ) && p.Tasks() >= slots
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeExceptionalSmallGrid(t *testing.T) {
	// I·J·K < M·Tc → use (I,J,K) "for exploiting the parallelism as much as
	// possible, which actually works like the RMM method" (§3.2).
	s := Shape{I: 2, J: 2, K: 2, ABytes: 100, BBytes: 100, CBytes: 100}
	p, err := Optimize(s, 1<<30, 90)
	if err != nil {
		t.Fatal(err)
	}
	if p != (Params{P: 2, Q: 2, R: 2}) {
		t.Fatalf("exceptional case returned %v, want (2,2,2)", p)
	}
}

func TestOptimizeInfeasible(t *testing.T) {
	// Even one voxel exceeds the budget.
	s := Shape{I: 2, J: 2, K: 2, ABytes: 4000, BBytes: 4000, CBytes: 4000}
	_, err := Optimize(s, 10, 8)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestOptimizeInvalidInputs(t *testing.T) {
	if _, err := Optimize(Shape{}, 100, 1); err == nil {
		t.Fatal("zero shape accepted")
	}
	if _, err := Optimize(Shape{I: 1, J: 1, K: 1}, 0, 1); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := Optimize(Shape{I: 1, J: 1, K: 1, ABytes: -1}, 10, 1); err == nil {
		t.Fatal("negative payload accepted")
	}
}

// TestOptimizeTightBudgetRaisesPartitions reproduces the paper's elasticity:
// shrinking θt forces finer partitionings with higher communication cost.
func TestOptimizeTightBudgetRaisesPartitions(t *testing.T) {
	s := Shape{I: 10, J: 10, K: 10, ABytes: 1 << 20, BBytes: 1 << 20, CBytes: 1 << 20}
	loose, err := Optimize(s, 1<<22, 8)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Optimize(s, 1<<18, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Tasks() <= loose.Tasks() {
		t.Fatalf("tight budget should need more cuboids: loose %v, tight %v", loose, tight)
	}
	if s.CostBytes(tight) < s.CostBytes(loose) {
		t.Fatal("tighter memory cannot reduce communication cost")
	}
}

// TestOptimizePaperShapes runs the optimizer on Table 4's three dataset
// families (scaled sizes, paper block counts) and checks the structural
// patterns the paper reports: a common large dimension yields (1,1,R) —
// CPMM-like with fewer aggregations — and two large dimensions yield
// (P,Q,1) — no aggregation at all.
func TestOptimizePaperShapes(t *testing.T) {
	const slots = 90
	// 10K×N×10K: I=J=10 blocks, K large; |A| = |B| small relative to k.
	s := Shape{I: 10, J: 10, K: 1000, ABytes: 10 * 1000 * 64, BBytes: 10 * 1000 * 64, CBytes: 10 * 10 * 64}
	p, err := Optimize(s, 40*1000*64, slots)
	if err != nil {
		t.Fatal(err)
	}
	if p.P != 1 || p.Q != 1 {
		t.Fatalf("common-large-dimension family should pick (1,1,R): got %v", p)
	}
	if p.R >= s.K {
		t.Fatalf("R should be far below K: got %v", p)
	}

	// N×1K×N: K=1 block, I=J large; |C| dominates.
	s2 := Shape{I: 500, J: 500, K: 1, ABytes: 500 * 64, BBytes: 500 * 64, CBytes: 500 * 500 * 64}
	p2, err := Optimize(s2, 3000*64, slots)
	if err != nil {
		t.Fatal(err)
	}
	if p2.R != 1 {
		t.Fatalf("two-large-dimensions family must have R=1: got %v", p2)
	}
	if p2.P == 1 || p2.Q == 1 {
		t.Fatalf("both P and Q should exceed 1 to shrink |C| per task: got %v", p2)
	}
}

func TestOptimizeSubPrefersKAxis(t *testing.T) {
	// §4.2: when C^m fits in θg, the optimizer produces (1,1,R2).
	c := CuboidShape{IB: 4, JB: 4, KB: 16, ABytes: 1 << 20, BBytes: 1 << 20, CBytes: 1 << 16}
	sub, err := OptimizeSub(c, 1<<18)
	if err != nil {
		t.Fatal(err)
	}
	if sub.P2 != 1 || sub.Q2 != 1 {
		t.Fatalf("want (1,1,R2), got %v", sub)
	}
	if got := c.MemBytes(sub); got > float64(1<<18) {
		t.Fatalf("chosen params exceed θg: %g", got)
	}
}

func TestOptimizeSubGrowsPQWhenCLarge(t *testing.T) {
	// When C^m alone exceeds θg, P2 and Q2 must grow (§4.2).
	c := CuboidShape{IB: 8, JB: 8, KB: 4, ABytes: 1 << 16, BBytes: 1 << 16, CBytes: 1 << 22}
	sub, err := OptimizeSub(c, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if sub.P2*sub.Q2 < 4 {
		t.Fatalf("C-bound cuboid needs P2·Q2 ≥ 4: got %v", sub)
	}
	if got := c.MemBytes(sub); got > float64(1<<20) {
		t.Fatalf("chosen params exceed θg: %g", got)
	}
}

func TestOptimizeSubCostIndependentOfR2(t *testing.T) {
	c := CuboidShape{IB: 2, JB: 2, KB: 8, ABytes: 100, BBytes: 100, CBytes: 100}
	base := c.CostBytes(SubParams{P2: 1, Q2: 1, R2: 1})
	for r2 := 2; r2 <= 8; r2++ {
		if got := c.CostBytes(SubParams{P2: 1, Q2: 1, R2: r2}); got != base {
			t.Fatalf("Eq.(6) must not depend on R2: R2=%d gives %g vs %g", r2, got, base)
		}
	}
}

func TestOptimizeSubInfeasible(t *testing.T) {
	c := CuboidShape{IB: 1, JB: 1, KB: 1, ABytes: 100, BBytes: 100, CBytes: 100}
	if _, err := OptimizeSub(c, 10); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestOptimizeSubBruteForceAgreement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := CuboidShape{
			IB: 1 + rng.Intn(8), JB: 1 + rng.Intn(8), KB: 1 + rng.Intn(8),
			ABytes: int64(1 + rng.Intn(10000)),
			BBytes: int64(1 + rng.Intn(10000)),
			CBytes: int64(1 + rng.Intn(10000)),
		}
		θ := int64(1 + rng.Intn(20000))
		got, gerr := OptimizeSub(c, θ)
		want, werr := bruteSub(c, θ)
		if (gerr == nil) != (werr == nil) {
			return false
		}
		if gerr != nil {
			return true
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func bruteSub(c CuboidShape, θ int64) (SubParams, error) {
	best := SubParams{}
	bestCost := 0.0
	found := false
	for p2 := 1; p2 <= c.IB; p2++ {
		for q2 := 1; q2 <= c.JB; q2++ {
			for r2 := 1; r2 <= c.KB; r2++ {
				cand := SubParams{P2: p2, Q2: q2, R2: r2}
				if c.MemBytes(cand) > float64(θ) {
					continue
				}
				cost := c.CostBytes(cand)
				if !found || cost < bestCost || (cost == bestCost && lessSub(cand, best)) {
					best, bestCost, found = cand, cost, true
				}
			}
		}
	}
	if !found {
		return SubParams{}, ErrInfeasible
	}
	return best, nil
}

// TestOptimizerDominatesCornerMethods: for any shape where a classical
// corner (BMM/CPMM/RMM) is feasible under θt and the slot prune, the
// optimizer's choice costs no more — CuboidMM's headline guarantee.
func TestOptimizerDominatesCornerMethods(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := Shape{
			I: 1 + rng.Intn(16), J: 1 + rng.Intn(16), K: 1 + rng.Intn(16),
			ABytes: int64(1 + rng.Intn(1<<20)),
			BBytes: int64(1 + rng.Intn(1<<20)),
			CBytes: int64(1 + rng.Intn(1<<20)),
		}
		θ := int64(1 + rng.Intn(1<<21))
		slots := 1 + rng.Intn(12)
		opt, err := Optimize(s, θ, slots)
		if err != nil {
			return true // nothing feasible at all
		}
		if s.I*s.J*s.K < slots {
			return true // exceptional case bypasses the search
		}
		best := s.CostBytes(opt)
		for _, corner := range []Params{s.BMMParams(), s.CPMMParams(), s.RMMParams()} {
			if corner.Tasks() < slots || s.MemBytes(corner) > float64(θ) {
				continue // corner not admissible under the same constraints
			}
			if s.CostBytes(corner) < best {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestOptimizeLargeGridPerformance guards the paper's claim that the search
// is cheap even at the biggest evaluated grid (§3.2 reports 0.3 s at
// 100×100×100 blocks; our O(I·K) variant is far faster).
func TestOptimizeLargeGridPerformance(t *testing.T) {
	s := Shape{
		I: 100, J: 100, K: 100,
		ABytes: 100_000 * 100_000 * 8,
		BBytes: 100_000 * 100_000 * 8,
		CBytes: 100_000 * 100_000 * 8,
	}
	start := timeNow()
	if _, err := Optimize(s, 6e9, 90); err != nil {
		t.Fatal(err)
	}
	if elapsed := timeSince(start); elapsed > 300*1e6 {
		t.Fatalf("optimizer took %dns at the paper's largest grid", elapsed)
	}
}
