package core

import (
	"context"
	"fmt"
	"time"

	"distme/internal/bmat"
	"distme/internal/cluster"
	"distme/internal/matrix"
	"distme/internal/obs"
	"distme/internal/shuffle"
)

// Lineage recovery for the matrix-aggregation step. A cuboid task's partial
// output lives on its executor until the aggregation shuffle fetches it;
// when the configured fault injector fails those fetches, the executor
// retries, and after maxTransientFetches consecutive failures declares the
// partition lost and recomputes it from lineage — the cuboid's voxel box
// over the original A and B operands, exactly as Spark resubmits a lost
// stage from its RDD lineage. Recomputation is deterministic, so recovered
// runs stay bit-identical to failure-free ones.

// maxTransientFetches is how many consecutive fetch failures of one
// partition are treated as transient before the partition is declared lost.
const maxTransientFetches = 2

// recoverCuboidPartials re-fetches every cuboid's partial ahead of
// aggregation, retrying transient shuffle-fetch failures and recomputing
// lost partials from lineage. A nil injector (no fault config) fetches
// nothing and returns immediately.
func recoverCuboidPartials(ctx context.Context, env Env, parent obs.SpanID, cuboids []*Cuboid, partials []map[bmat.BlockKey]*matrix.Dense, mult LocalMultiplier) error {
	inj := env.Cluster.FaultInjector()
	if inj == nil || inj.Config().FetchFailRate <= 0 {
		return nil
	}
	rec := env.recorder()
	for idx, c := range cuboids {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("%w: %w", cluster.ErrCancelled, err)
		}
		name := c.Name()
		retries, lost := shuffle.SimulateFetch(func(attempt int) bool {
			return inj.FetchFailed(name, attempt)
		}, maxTransientFetches)
		for i := 0; i < retries; i++ {
			rec.AddFetchRetry()
			rec.AddFaultInjected()
		}
		if !lost {
			continue
		}
		releasePartialMap(partials[idx])
		partials[idx] = nil
		recomputeStart := time.Now()
		out, err := mult.Multiply(c)
		if err != nil {
			return err
		}
		partials[idx] = out
		rec.AddRecomputedPartial()
		if env.Tracer.Enabled() {
			env.Tracer.AddCompleted(obs.SpanData{
				Parent: parent,
				Name:   "task.recompute",
				Kind:   obs.KindTask,
				Worker: name,
				P:      c.P, Q: c.Q, R: c.R,
				Start: recomputeStart, End: time.Now(),
			})
		}
	}
	return nil
}

// recoverVoxelPartials is the RMM variant: taskGroup maps each scheduled
// cluster task to its voxel group index, and recompute(t) re-derives the
// group's block-pair products from the operands.
func recoverVoxelPartials(ctx context.Context, env Env, parent obs.SpanID, taskGroup []int, partials []map[bmat.VoxelKey]*matrix.Dense, recompute func(t int) (map[bmat.VoxelKey]*matrix.Dense, error)) error {
	inj := env.Cluster.FaultInjector()
	if inj == nil || inj.Config().FetchFailRate <= 0 {
		return nil
	}
	rec := env.recorder()
	for _, t := range taskGroup {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("%w: %w", cluster.ErrCancelled, err)
		}
		name := fmt.Sprintf("rmm-task(%d)", t)
		retries, lost := shuffle.SimulateFetch(func(attempt int) bool {
			return inj.FetchFailed(name, attempt)
		}, maxTransientFetches)
		for i := 0; i < retries; i++ {
			rec.AddFetchRetry()
			rec.AddFaultInjected()
		}
		if !lost {
			continue
		}
		releaseVoxelPartialMap(partials[t])
		partials[t] = nil
		recomputeStart := time.Now()
		out, err := recompute(t)
		if err != nil {
			return err
		}
		partials[t] = out
		rec.AddRecomputedPartial()
		if env.Tracer.Enabled() {
			env.Tracer.AddCompleted(obs.SpanData{
				Parent: parent,
				Name:   "task.recompute",
				Kind:   obs.KindTask,
				Worker: name,
				P:      -1, Q: -1, R: -1,
				Start: recomputeStart, End: time.Now(),
			})
		}
	}
	return nil
}

// releasePartialMap returns a discarded partial's pooled dense buffers.
func releasePartialMap(m map[bmat.BlockKey]*matrix.Dense) {
	for _, d := range m {
		matrix.PutDense(d)
	}
}

// releaseVoxelPartialMap is releasePartialMap for voxel-keyed partials.
func releaseVoxelPartialMap(m map[bmat.VoxelKey]*matrix.Dense) {
	for _, d := range m {
		matrix.PutDense(d)
	}
}
