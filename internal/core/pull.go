package core

import "fmt"

// Pull-mode pricing: Eq.(4) split by who moves the bytes. Push mode ships
// every cuboid slice from the driver, so the driver NIC pays the full
// Q·|A| + P·|B|. Pull mode ships each operand once (or not at all, when it
// is already resident on the workers) and lets workers fetch the replicas
// they need from peers — the same total bytes, but the replica traffic
// spreads across W parallel worker↔worker links while driver traffic
// serializes through one NIC. The pull cost therefore charges driver bytes
// at face value and peer bytes at 1/W, which is what makes the two modes
// comparable on the axis that bounds wall clock.

// Transfer selects how cuboid operand slices reach the workers.
type Transfer int

const (
	// TransferAuto prices both modes with OptimizeTransfer and picks the
	// cheaper per job.
	TransferAuto Transfer = iota
	// TransferPush is the classic mode: the driver pushes every slice.
	TransferPush
	// TransferPull ships a placement manifest; workers fetch slices from
	// peers (or the driver as last resort).
	TransferPull
)

// String names the transfer mode.
func (t Transfer) String() string {
	switch t {
	case TransferAuto:
		return "auto"
	case TransferPush:
		return "push"
	case TransferPull:
		return "pull"
	default:
		return fmt.Sprintf("transfer(%d)", int(t))
	}
}

// Valid reports whether t is a known mode.
func (t Transfer) Valid() bool {
	return t == TransferAuto || t == TransferPush || t == TransferPull
}

// PullCost parameterizes the pull-mode evaluation of Eq.(4).
type PullCost struct {
	// Workers is the peer fan-out: the number of parallel worker↔worker
	// links replica traffic spreads across. Values below 1 mean 1.
	Workers int
	// SeedResident drops the one-copy driver seed term |A| + |B| — the
	// operands are already resident on the workers as handles, so pull mode
	// moves no operand bytes through the driver at all.
	SeedResident bool
}

func (pc PullCost) normalized() PullCost {
	if pc.Workers < 1 {
		pc.Workers = 1
	}
	return pc
}

// CostBytesPull evaluates Eq.(4) for pull mode: the driver seeds one copy
// of each operand (unless it is already resident), workers replicate the
// rest from peers at fan-out W, and aggregation R·|C| (charged only when
// R>1) still crosses the driver link:
//
//	InputRatio·(|A| + |B|)                      driver seed (0 if resident)
//	+ InputRatio·((Q−1)·|A| + (P−1)·|B|) / W    peer replication
//	+ AggRatio·R·|C|  (iff R > 1)               aggregation
//
// The sum of the first two numerators equals push's Q·|A| + P·|B| exactly —
// pull never moves fewer total bytes, it moves them over more links. The
// cost stays monotone nondecreasing in Q for fixed (P,R), so the
// minFeasibleQ search argument carries over unchanged.
func (s Shape) CostBytesPull(p Params, w WireCost, pc PullCost) float64 {
	w = w.normalized()
	pc = pc.normalized()
	cost := 0.0
	if !pc.SeedResident {
		cost += w.InputRatio * float64(s.ABytes+s.BBytes)
	}
	peer := float64(p.Q-1)*float64(s.ABytes) + float64(p.P-1)*float64(s.BBytes)
	cost += w.InputRatio * peer / float64(pc.Workers)
	if p.R > 1 {
		cost += w.AggRatio * float64(p.R) * float64(s.CBytes)
	}
	return cost
}

// OptimizePull is OptimizeWire with the cost evaluated as CostBytesPull:
// the feasible (P,Q,R) minimizing the pull-mode Eq.(4). The O(I·K) search
// stays exact for the same reason as OptimizeWire's — for fixed (P,R) the
// only Q-dependent term, (Q−1)·|A|/W, is nondecreasing in Q.
func OptimizePull(s Shape, taskMemBytes int64, slots int, w WireCost, pc PullCost) (Params, error) {
	if err := s.Validate(); err != nil {
		return Params{}, err
	}
	if taskMemBytes <= 0 {
		return Params{}, fmt.Errorf("core: Optimize: task memory budget must be positive, got %d", taskMemBytes)
	}
	if slots < 1 {
		slots = 1
	}
	w = w.normalized()
	pc = pc.normalized()
	// Exceptional case (§3.2): fewer voxels than slots.
	if s.I*s.J*s.K < slots {
		return Params{P: s.I, Q: s.J, R: s.K}, nil
	}

	best := Params{}
	bestCost := 0.0
	found := false
	θ := float64(taskMemBytes)
	for p := 1; p <= s.I; p++ {
		for r := 1; r <= s.K; r++ {
			q, ok := minFeasibleQ(s, p, r, θ, slots)
			if !ok {
				continue
			}
			cand := Params{P: p, Q: q, R: r}
			cost := s.CostBytesPull(cand, w, pc)
			if !found || cost < bestCost || (cost == bestCost && less(cand, best)) {
				best, bestCost, found = cand, cost, true
			}
		}
	}
	if !found {
		return Params{}, fmt.Errorf("%w: grid %dx%dx%d, θt=%d", ErrInfeasible, s.I, s.J, s.K, taskMemBytes)
	}
	return best, nil
}

// OptimizeTransfer solves Eq.(2) across both transfer modes: it returns the
// cheaper of OptimizeWire's push plan (priced CostBytesWire) and
// OptimizePull's pull plan (priced CostBytesPull), and which mode won.
// Pull is selected exactly when its Eq.(4) evaluation is strictly cheaper;
// ties keep push, the established mode.
func OptimizeTransfer(s Shape, taskMemBytes int64, slots int, w WireCost, pc PullCost) (Params, Transfer, error) {
	push, err := OptimizeWire(s, taskMemBytes, slots, w)
	if err != nil {
		return Params{}, TransferPush, err
	}
	pull, err := OptimizePull(s, taskMemBytes, slots, w, pc)
	if err != nil {
		return Params{}, TransferPush, err
	}
	if s.CostBytesPull(pull, w, pc) < s.CostBytesWire(push, w) {
		return pull, TransferPull, nil
	}
	return push, TransferPush, nil
}

// OptimizePullBrute is the direct O(I·J·K) scan of the pull-mode Eq.(2);
// exported for the tests that hold OptimizePull to the exact argmin.
func OptimizePullBrute(s Shape, taskMemBytes int64, slots int, w WireCost, pc PullCost) (Params, error) {
	if err := s.Validate(); err != nil {
		return Params{}, err
	}
	if slots < 1 {
		slots = 1
	}
	if s.I*s.J*s.K < slots {
		return Params{P: s.I, Q: s.J, R: s.K}, nil
	}
	w = w.normalized()
	pc = pc.normalized()
	θ := float64(taskMemBytes)
	best := Params{}
	bestCost := 0.0
	found := false
	for p := 1; p <= s.I; p++ {
		for q := 1; q <= s.J; q++ {
			for r := 1; r <= s.K; r++ {
				cand := Params{P: p, Q: q, R: r}
				if cand.Tasks() < slots {
					continue
				}
				if s.MemBytes(cand) > θ {
					continue
				}
				cost := s.CostBytesPull(cand, w, pc)
				if !found || cost < bestCost || (cost == bestCost && less(cand, best)) {
					best, bestCost, found = cand, cost, true
				}
			}
		}
	}
	if !found {
		return Params{}, fmt.Errorf("%w: grid %dx%dx%d, θt=%d", ErrInfeasible, s.I, s.J, s.K, taskMemBytes)
	}
	return best, nil
}
