// Package bmat implements the distributed block matrix representation of
// the paper's §2.1: a matrix is a grid of fixed-size square blocks (the last
// block of an axis may be ragged), and a block is the basic unit of
// distributed computation. The engine's partitioners, shuffles, cuboid
// executors and GPU streaming all move these blocks around.
package bmat

import (
	"fmt"

	"distme/internal/matrix"
)

// BlockKey addresses a block within a block matrix: row block index I and
// column block index J (the paper's A_{i,k} subscripts).
type BlockKey struct {
	I, J int
}

// String renders the key like the paper's subscripts.
func (k BlockKey) String() string { return fmt.Sprintf("(%d,%d)", k.I, k.J) }

// VoxelKey addresses one voxel v_{i,j,k} of the 3-dimensional multiplication
// model (§2.2): the computation C^k_{i,j} = A_{i,k}·B_{k,j}.
type VoxelKey struct {
	I, J, K int
}

// String renders the key like the paper's subscripts.
func (k VoxelKey) String() string { return fmt.Sprintf("(%d,%d,%d)", k.I, k.J, k.K) }

// BlockMatrix is a Rows×Cols matrix stored as an IB×JB grid of blocks of
// side BlockSize. Missing blocks are implicitly zero, which keeps sparse
// matrices cheap.
type BlockMatrix struct {
	Rows, Cols int // element dimensions
	BlockSize  int // block side length b (paper default 1000×1000)
	IB, JB     int // grid dimensions: ceil(Rows/b) × ceil(Cols/b)

	blocks map[BlockKey]matrix.Block
}

// New creates an empty (all-zero) block matrix.
func New(rows, cols, blockSize int) *BlockMatrix {
	if rows < 0 || cols < 0 || blockSize <= 0 {
		panic(fmt.Sprintf("bmat: New(%d, %d, %d): invalid dimensions", rows, cols, blockSize))
	}
	return &BlockMatrix{
		Rows:      rows,
		Cols:      cols,
		BlockSize: blockSize,
		IB:        ceilDiv(rows, blockSize),
		JB:        ceilDiv(cols, blockSize),
		blocks:    make(map[BlockKey]matrix.Block),
	}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// BlockDims returns the element dimensions of the block at grid position
// (i, j), accounting for ragged edge blocks.
func (m *BlockMatrix) BlockDims(i, j int) (rows, cols int) {
	if i < 0 || i >= m.IB || j < 0 || j >= m.JB {
		panic(fmt.Sprintf("bmat: block (%d, %d) out of grid %dx%d", i, j, m.IB, m.JB))
	}
	rows = m.BlockSize
	if r := m.Rows - i*m.BlockSize; r < rows {
		rows = r
	}
	cols = m.BlockSize
	if c := m.Cols - j*m.BlockSize; c < cols {
		cols = c
	}
	return rows, cols
}

// Block returns the block at grid position (i, j), or nil when the block is
// all zero.
func (m *BlockMatrix) Block(i, j int) matrix.Block {
	return m.blocks[BlockKey{i, j}]
}

// SetBlock stores a block at grid position (i, j). The block's dimensions
// must match the grid slot; a nil block clears the slot to zero.
func (m *BlockMatrix) SetBlock(i, j int, b matrix.Block) {
	key := BlockKey{i, j}
	if b == nil {
		delete(m.blocks, key)
		return
	}
	wr, wc := m.BlockDims(i, j)
	br, bc := b.Dims()
	if br != wr || bc != wc {
		panic(fmt.Sprintf("bmat: SetBlock(%d, %d): block is %dx%d, slot wants %dx%d", i, j, br, bc, wr, wc))
	}
	m.blocks[key] = b
}

// NumBlocks returns the count of explicitly stored (non-zero) blocks.
func (m *BlockMatrix) NumBlocks() int { return len(m.blocks) }

// Keys returns the stored block keys in unspecified order.
func (m *BlockMatrix) Keys() []BlockKey {
	keys := make([]BlockKey, 0, len(m.blocks))
	for k := range m.blocks {
		keys = append(keys, k)
	}
	return keys
}

// At returns the element at (i, j) in matrix coordinates.
func (m *BlockMatrix) At(i, j int) float64 {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("bmat: element (%d, %d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
	b := m.Block(i/m.BlockSize, j/m.BlockSize)
	if b == nil {
		return 0
	}
	return b.At(i%m.BlockSize, j%m.BlockSize)
}

// ElementCount returns Rows×Cols — the paper's |A| for dense matrices.
func (m *BlockMatrix) ElementCount() int64 { return int64(m.Rows) * int64(m.Cols) }

// NNZ returns the total stored non-zero count across blocks.
func (m *BlockMatrix) NNZ() int64 {
	var n int64
	for _, b := range m.blocks {
		n += int64(b.NNZ())
	}
	return n
}

// StoredBytes returns the total stored payload, which is what shuffling this
// matrix actually costs — dense blocks charge their full extent, sparse
// blocks their compressed size.
func (m *BlockMatrix) StoredBytes() int64 {
	var n int64
	for _, b := range m.blocks {
		n += b.SizeBytes()
	}
	return n
}

// DenseBytes returns the fully-dense payload estimate (8 bytes/element),
// which the paper uses as the worst-case size of intermediate C matrices.
func (m *BlockMatrix) DenseBytes() int64 { return m.ElementCount() * 8 }

// IsSparse reports whether any stored block uses a sparse format.
func (m *BlockMatrix) IsSparse() bool {
	for _, b := range m.blocks {
		if b.Format() != matrix.FormatDense {
			return true
		}
	}
	return false
}

// Sparsity returns NNZ / (Rows×Cols); an empty matrix reports 0.
func (m *BlockMatrix) Sparsity() float64 {
	if m.Rows == 0 || m.Cols == 0 {
		return 0
	}
	return float64(m.NNZ()) / float64(m.ElementCount())
}

// Clone returns a deep copy (blocks are copied).
func (m *BlockMatrix) Clone() *BlockMatrix {
	out := New(m.Rows, m.Cols, m.BlockSize)
	for k, b := range m.blocks {
		switch v := b.(type) {
		case *matrix.Dense:
			out.blocks[k] = v.Clone()
		default:
			// Sparse blocks are treated as immutable by the engine; share.
			out.blocks[k] = b
		}
	}
	return out
}

// String summarizes the matrix.
func (m *BlockMatrix) String() string {
	return fmt.Sprintf("BlockMatrix{%dx%d, b=%d, grid=%dx%d, blocks=%d}",
		m.Rows, m.Cols, m.BlockSize, m.IB, m.JB, len(m.blocks))
}
