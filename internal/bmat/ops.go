package bmat

import (
	"fmt"
	"math"
	"math/rand"

	"distme/internal/matrix"
)

// FromDense splits a dense matrix into a block matrix with the given block
// size. All-zero blocks are not stored.
func FromDense(d *matrix.Dense, blockSize int) *BlockMatrix {
	m := New(d.RowsN, d.ColsN, blockSize)
	for bi := 0; bi < m.IB; bi++ {
		for bj := 0; bj < m.JB; bj++ {
			r, c := m.BlockDims(bi, bj)
			blk := matrix.NewDense(r, c)
			nonzero := false
			for i := 0; i < r; i++ {
				for j := 0; j < c; j++ {
					v := d.At(bi*blockSize+i, bj*blockSize+j)
					if v != 0 {
						nonzero = true
					}
					blk.Set(i, j, v)
				}
			}
			if nonzero {
				m.SetBlock(bi, bj, blk)
			}
		}
	}
	return m
}

// ToDense materializes the whole matrix as one dense block; intended for
// verification at test scale.
func (m *BlockMatrix) ToDense() *matrix.Dense {
	d := matrix.NewDense(m.Rows, m.Cols)
	for k, b := range m.blocks {
		br, bc := b.Dims()
		for i := 0; i < br; i++ {
			for j := 0; j < bc; j++ {
				if v := b.At(i, j); v != 0 {
					d.Set(k.I*m.BlockSize+i, k.J*m.BlockSize+j, v)
				}
			}
		}
	}
	return d
}

// RandomDense builds a rows×cols block matrix with uniform [0,1) entries.
func RandomDense(rng *rand.Rand, rows, cols, blockSize int) *BlockMatrix {
	m := New(rows, cols, blockSize)
	for bi := 0; bi < m.IB; bi++ {
		for bj := 0; bj < m.JB; bj++ {
			r, c := m.BlockDims(bi, bj)
			m.SetBlock(bi, bj, matrix.RandomDense(rng, r, c))
		}
	}
	return m
}

// RandomSparse builds a rows×cols block matrix of CSR blocks with the given
// sparsity (fraction of non-zeros). Blocks that come out empty are dropped.
func RandomSparse(rng *rand.Rand, rows, cols, blockSize int, sparsity float64) *BlockMatrix {
	m := New(rows, cols, blockSize)
	for bi := 0; bi < m.IB; bi++ {
		for bj := 0; bj < m.JB; bj++ {
			r, c := m.BlockDims(bi, bj)
			blk := matrix.RandomSparse(rng, r, c, sparsity)
			if blk.NNZ() > 0 {
				m.SetBlock(bi, bj, blk)
			}
		}
	}
	return m
}

// Identity builds the n×n identity as a block matrix.
func Identity(n, blockSize int) *BlockMatrix {
	m := New(n, n, blockSize)
	for bi := 0; bi < m.IB; bi++ {
		r, _ := m.BlockDims(bi, bi)
		blk := matrix.NewDense(r, r)
		for i := 0; i < r; i++ {
			blk.Set(i, i, 1)
		}
		m.SetBlock(bi, bi, blk)
	}
	return m
}

// Transpose returns the transposed block matrix (blocks transposed and
// re-indexed). The paper implements this as an RDD map + re-key.
func (m *BlockMatrix) Transpose() *BlockMatrix {
	out := New(m.Cols, m.Rows, m.BlockSize)
	for k, b := range m.blocks {
		out.SetBlock(k.J, k.I, matrix.Transpose(b))
	}
	return out
}

// zipCheck panics unless a and b are conformable for element-wise work.
func zipCheck(op string, a, b *BlockMatrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols || a.BlockSize != b.BlockSize {
		panic(fmt.Sprintf("bmat: %s: shape mismatch %dx%d/b=%d vs %dx%d/b=%d",
			op, a.Rows, a.Cols, a.BlockSize, b.Rows, b.Cols, b.BlockSize))
	}
}

// Add returns a+b block-wise.
func Add(a, b *BlockMatrix) *BlockMatrix {
	zipCheck("Add", a, b)
	out := New(a.Rows, a.Cols, a.BlockSize)
	for k, ab := range a.blocks {
		if bb, ok := b.blocks[k]; ok {
			out.blocks[k] = matrix.Add(ab, bb)
		} else {
			out.blocks[k] = ab.Dense()
		}
	}
	for k, bb := range b.blocks {
		if _, ok := a.blocks[k]; !ok {
			out.blocks[k] = bb.Dense()
		}
	}
	return out
}

// Sub returns a−b block-wise.
func Sub(a, b *BlockMatrix) *BlockMatrix {
	zipCheck("Sub", a, b)
	out := New(a.Rows, a.Cols, a.BlockSize)
	for k, ab := range a.blocks {
		if bb, ok := b.blocks[k]; ok {
			out.blocks[k] = matrix.Sub(ab, bb)
		} else {
			out.blocks[k] = ab.Dense()
		}
	}
	for k, bb := range b.blocks {
		if _, ok := a.blocks[k]; !ok {
			out.blocks[k] = matrix.Scale(-1, bb)
		}
	}
	return out
}

// Hadamard returns the element-wise product a∘b. Blocks present in only one
// operand multiply to zero and are dropped.
func Hadamard(a, b *BlockMatrix) *BlockMatrix {
	zipCheck("Hadamard", a, b)
	out := New(a.Rows, a.Cols, a.BlockSize)
	for k, ab := range a.blocks {
		if bb, ok := b.blocks[k]; ok {
			out.blocks[k] = matrix.Hadamard(ab, bb)
		}
	}
	return out
}

// DivElem returns a⊘b element-wise with an epsilon guard on denominators
// (see matrix.DivElem). Every block position of a must be evaluated: where b
// has no block the denominator is the eps guard.
func DivElem(a, b *BlockMatrix, eps float64) *BlockMatrix {
	zipCheck("DivElem", a, b)
	out := New(a.Rows, a.Cols, a.BlockSize)
	for k, ab := range a.blocks {
		bb := b.blocks[k]
		if bb == nil {
			r, c := a.BlockDims(k.I, k.J)
			bb = matrix.NewDense(r, c)
		}
		out.blocks[k] = matrix.DivElem(ab, bb, eps)
	}
	return out
}

// Scale returns s·a block-wise.
func (m *BlockMatrix) Scale(s float64) *BlockMatrix {
	out := New(m.Rows, m.Cols, m.BlockSize)
	for k, b := range m.blocks {
		out.blocks[k] = matrix.Scale(s, b)
	}
	return out
}

// EqualApprox reports whether a and b agree within tol element-wise.
func EqualApprox(a, b *BlockMatrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	return a.ToDense().EqualApprox(b.ToDense(), tol)
}

// Dot returns the Frobenius inner product ⟨a, b⟩ = Σ aᵢⱼ·bᵢⱼ. Blocks
// present in only one operand contribute nothing.
func Dot(a, b *BlockMatrix) float64 {
	zipCheck("Dot", a, b)
	var s float64
	for k, ab := range a.blocks {
		bb, ok := b.blocks[k]
		if !ok {
			continue
		}
		// Iterate the sparser side to skip zeros.
		if bb.NNZ() < ab.NNZ() {
			ab, bb = bb, ab
		}
		switch v := ab.(type) {
		case *matrix.Dense:
			bd, isD := bb.(*matrix.Dense)
			if !isD {
				bd = bb.Dense()
			}
			for i, x := range v.Data {
				s += x * bd.Data[i]
			}
		case *matrix.CSR:
			for i := 0; i < v.RowsN; i++ {
				for p := v.RowPtr[i]; p < v.RowPtr[i+1]; p++ {
					s += v.Val[p] * bb.At(i, v.ColIdx[p])
				}
			}
		default:
			d := ab.Dense()
			bd := bb.Dense()
			for i, x := range d.Data {
				s += x * bd.Data[i]
			}
		}
	}
	return s
}

// SumAll returns the sum of every element.
func (m *BlockMatrix) SumAll() float64 {
	var s float64
	for _, b := range m.blocks {
		switch v := b.(type) {
		case *matrix.Dense:
			for _, x := range v.Data {
				s += x
			}
		case *matrix.CSR:
			for _, x := range v.Val {
				s += x
			}
		case *matrix.CSC:
			for _, x := range v.Val {
				s += x
			}
		default:
			d := b.Dense()
			for _, x := range d.Data {
				s += x
			}
		}
	}
	return s
}

// Trace returns Σ mᵢᵢ for a square matrix.
func (m *BlockMatrix) Trace() float64 {
	if m.Rows != m.Cols {
		panic(fmt.Sprintf("bmat: Trace: matrix is %dx%d, not square", m.Rows, m.Cols))
	}
	var s float64
	for i := 0; i < m.Rows; i++ {
		s += m.At(i, i)
	}
	return s
}

// FrobeniusNorm returns the Frobenius norm of the matrix.
func (m *BlockMatrix) FrobeniusNorm() float64 {
	var s float64
	for _, b := range m.blocks {
		switch v := b.(type) {
		case *matrix.Dense:
			for _, x := range v.Data {
				s += x * x
			}
		case *matrix.CSR:
			for _, x := range v.Val {
				s += x * x
			}
		case *matrix.CSC:
			for _, x := range v.Val {
				s += x * x
			}
		default:
			d := b.Dense()
			for _, x := range d.Data {
				s += x * x
			}
		}
	}
	return math.Sqrt(s)
}
