package bmat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"distme/internal/matrix"
)

func TestAddMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	a := RandomSparse(rng, 12, 9, 4, 0.3)
	b := RandomDense(rng, 12, 9, 4)
	got := Add(a, b).ToDense()
	want := matrix.Add(a.ToDense(), b.ToDense())
	if !got.EqualApprox(want, 1e-12) {
		t.Fatal("block Add mismatch")
	}
}

func TestSubMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := RandomDense(rng, 7, 7, 3)
	b := RandomSparse(rng, 7, 7, 3, 0.4)
	got := Sub(a, b).ToDense()
	want := matrix.Sub(a.ToDense(), b.ToDense())
	if !got.EqualApprox(want, 1e-12) {
		t.Fatal("block Sub mismatch")
	}
}

func TestSubMissingLeftBlock(t *testing.T) {
	// A block present only in b must appear negated in a−b.
	a := New(4, 4, 2)
	b := New(4, 4, 2)
	blk := matrix.NewDenseData(2, 2, []float64{1, 2, 3, 4})
	b.SetBlock(1, 1, blk)
	got := Sub(a, b)
	if got.At(2, 2) != -1 || got.At(3, 3) != -4 {
		t.Fatalf("Sub with missing left block wrong: %v", got.ToDense())
	}
}

func TestHadamardMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	a := RandomSparse(rng, 10, 10, 3, 0.5)
	b := RandomDense(rng, 10, 10, 3)
	got := Hadamard(a, b).ToDense()
	want := matrix.Hadamard(a.ToDense(), b.ToDense())
	if !got.EqualApprox(want, 1e-12) {
		t.Fatal("block Hadamard mismatch")
	}
}

func TestHadamardDropsOneSidedBlocks(t *testing.T) {
	a := New(4, 4, 2)
	a.SetBlock(0, 0, matrix.NewDenseData(2, 2, []float64{1, 1, 1, 1}))
	b := New(4, 4, 2)
	b.SetBlock(1, 1, matrix.NewDenseData(2, 2, []float64{1, 1, 1, 1}))
	if got := Hadamard(a, b); got.NumBlocks() != 0 {
		t.Fatalf("one-sided blocks should vanish, got %d blocks", got.NumBlocks())
	}
}

func TestDivElemGuard(t *testing.T) {
	a := New(2, 2, 2)
	a.SetBlock(0, 0, matrix.NewDenseData(2, 2, []float64{1, 2, 3, 4}))
	b := New(2, 2, 2) // all-zero denominator
	eps := 1e-8
	got := DivElem(a, b, eps)
	if want := 1 / eps; got.At(0, 0) != want {
		t.Fatalf("missing denominator block not clamped: %g, want %g", got.At(0, 0), want)
	}
}

func TestScaleBlockMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	a := RandomDense(rng, 5, 5, 2)
	got := a.Scale(2.5).ToDense()
	want := matrix.Scale(2.5, a.ToDense())
	if !got.EqualApprox(want, 1e-12) {
		t.Fatal("Scale mismatch")
	}
}

func TestFrobeniusNormMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := RandomSparse(rng, 1+rng.Intn(15), 1+rng.Intn(15), 1+rng.Intn(4), 0.4)
		return math.Abs(m.FrobeniusNorm()-m.ToDense().FrobeniusNorm()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestZipShapeMismatchPanics(t *testing.T) {
	a := New(4, 4, 2)
	b := New(4, 4, 4) // different block size
	defer func() {
		if recover() == nil {
			t.Fatal("block-size mismatch did not panic")
		}
	}()
	Add(a, b)
}

// Property: Add is commutative and Hadamard distributes over block layout.
func TestAddCommutativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c, bs := 1+rng.Intn(10), 1+rng.Intn(10), 1+rng.Intn(4)
		a := RandomSparse(rng, r, c, bs, 0.4)
		b := RandomSparse(rng, r, c, bs, 0.4)
		return EqualApprox(Add(a, b), Add(b, a), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDotMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	a := RandomSparse(rng, 14, 11, 4, 0.3)
	b := RandomDense(rng, 14, 11, 4)
	var want float64
	ad, bd := a.ToDense(), b.ToDense()
	for i, x := range ad.Data {
		want += x * bd.Data[i]
	}
	if got := Dot(a, b); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Dot = %g, want %g", got, want)
	}
	if got, rev := Dot(a, b), Dot(b, a); math.Abs(got-rev) > 1e-9 {
		t.Fatal("Dot not symmetric")
	}
}

func TestDotDisjointBlocks(t *testing.T) {
	a := New(4, 4, 2)
	a.SetBlock(0, 0, matrix.NewDenseData(2, 2, []float64{1, 1, 1, 1}))
	b := New(4, 4, 2)
	b.SetBlock(1, 1, matrix.NewDenseData(2, 2, []float64{1, 1, 1, 1}))
	if Dot(a, b) != 0 {
		t.Fatal("disjoint blocks must dot to zero")
	}
}

func TestSumAllAndTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	m := RandomSparse(rng, 9, 9, 3, 0.4)
	d := m.ToDense()
	var wantSum, wantTr float64
	for i := 0; i < 9; i++ {
		wantTr += d.At(i, i)
		for j := 0; j < 9; j++ {
			wantSum += d.At(i, j)
		}
	}
	if got := m.SumAll(); math.Abs(got-wantSum) > 1e-9 {
		t.Fatalf("SumAll = %g, want %g", got, wantSum)
	}
	if got := m.Trace(); math.Abs(got-wantTr) > 1e-9 {
		t.Fatalf("Trace = %g, want %g", got, wantTr)
	}
}

func TestTraceNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-square Trace did not panic")
		}
	}()
	New(3, 4, 2).Trace()
}

// Property: Dot(a, a) = ‖a‖F².
func TestDotSelfIsNormSquaredProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := RandomSparse(rng, 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(4), 0.5)
		n := m.FrobeniusNorm()
		return math.Abs(Dot(m, m)-n*n) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
