package bmat

import (
	"math/rand"
	"testing"
	"testing/quick"

	"distme/internal/matrix"
)

func TestNewGridDimensions(t *testing.T) {
	m := New(10, 7, 3)
	if m.IB != 4 || m.JB != 3 {
		t.Fatalf("grid = %dx%d, want 4x3", m.IB, m.JB)
	}
	r, c := m.BlockDims(3, 2) // ragged corner: 10-9=1 row, 7-6=1 col
	if r != 1 || c != 1 {
		t.Fatalf("corner block dims = %dx%d, want 1x1", r, c)
	}
	r, c = m.BlockDims(0, 0)
	if r != 3 || c != 3 {
		t.Fatalf("interior block dims = %dx%d, want 3x3", r, c)
	}
}

func TestSetBlockDimensionCheck(t *testing.T) {
	m := New(4, 4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-size block did not panic")
		}
	}()
	m.SetBlock(0, 0, matrix.NewDense(3, 3))
}

func TestSetBlockNilClears(t *testing.T) {
	m := New(4, 4, 2)
	m.SetBlock(0, 0, matrix.NewDenseData(2, 2, []float64{1, 2, 3, 4}))
	if m.NumBlocks() != 1 {
		t.Fatal("block not stored")
	}
	m.SetBlock(0, 0, nil)
	if m.NumBlocks() != 0 {
		t.Fatal("nil set did not clear block")
	}
	if m.At(0, 0) != 0 {
		t.Fatal("cleared block should read zero")
	}
}

func TestAtAcrossBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	d := matrix.RandomDense(rng, 9, 11)
	m := FromDense(d, 4)
	for i := 0; i < 9; i++ {
		for j := 0; j < 11; j++ {
			if m.At(i, j) != d.At(i, j) {
				t.Fatalf("At(%d,%d) mismatch", i, j)
			}
		}
	}
}

func TestFromDenseToDenseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(20), 1+rng.Intn(20)
		bs := 1 + rng.Intn(7)
		d := matrix.RandomDense(rng, rows, cols)
		return FromDense(d, bs).ToDense().Equal(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFromDenseDropsZeroBlocks(t *testing.T) {
	d := matrix.NewDense(4, 4)
	d.Set(0, 0, 5) // only top-left block non-zero
	m := FromDense(d, 2)
	if m.NumBlocks() != 1 {
		t.Fatalf("stored %d blocks, want 1", m.NumBlocks())
	}
}

func TestRandomSparseBlockMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m := RandomSparse(rng, 50, 40, 10, 0.1)
	sp := m.Sparsity()
	if sp < 0.05 || sp > 0.15 {
		t.Fatalf("sparsity = %g, want ≈0.1", sp)
	}
	if !m.IsSparse() {
		t.Fatal("CSR-backed matrix should report sparse")
	}
	if m.StoredBytes() >= m.DenseBytes() {
		t.Fatal("sparse storage should be below dense estimate at 10% density")
	}
}

func TestIdentityMultiplicative(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := RandomDense(rng, 6, 6, 2)
	id := Identity(6, 2)
	if id.NNZ() != 6 {
		t.Fatalf("identity nnz = %d, want 6", id.NNZ())
	}
	// Identity behaves as neutral under naive block multiplication.
	prod := naiveBlockMul(id, a)
	if !EqualApprox(prod, a, 1e-12) {
		t.Fatal("I×A != A")
	}
}

// naiveBlockMul multiplies two block matrices directly, as a reference for
// the distributed executors' tests.
func naiveBlockMul(a, b *BlockMatrix) *BlockMatrix {
	out := New(a.Rows, b.Cols, a.BlockSize)
	for i := 0; i < a.IB; i++ {
		for j := 0; j < b.JB; j++ {
			var acc *matrix.Dense
			for k := 0; k < a.JB; k++ {
				ab := a.Block(i, k)
				bb := b.Block(k, j)
				if ab == nil || bb == nil {
					continue
				}
				acc = matrix.MulAdd(acc, ab, bb)
			}
			if acc != nil {
				out.SetBlock(i, j, acc)
			}
		}
	}
	return out
}

func TestNaiveBlockMulMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12)
		bs := 1 + rng.Intn(5)
		a := RandomDense(rng, m, k, bs)
		b := RandomDense(rng, k, n, bs)
		got := naiveBlockMul(a, b).ToDense()
		want := matrix.Mul(a.ToDense(), b.ToDense()).Dense()
		return got.EqualApprox(want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeBlockMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := RandomDense(rng, 9, 5, 2)
	tr := m.Transpose()
	if tr.Rows != 5 || tr.Cols != 9 {
		t.Fatalf("transpose dims %dx%d", tr.Rows, tr.Cols)
	}
	if !tr.ToDense().Equal(m.ToDense().Transpose()) {
		t.Fatal("block transpose mismatch")
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	m := RandomDense(rng, 4, 4, 2)
	cl := m.Clone()
	m.Block(0, 0).(*matrix.Dense).Set(0, 0, 999)
	if cl.At(0, 0) == 999 {
		t.Fatal("clone shares dense block storage")
	}
}

func TestElementCountAndNNZ(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	m := RandomSparse(rng, 30, 30, 8, 0.2)
	if m.ElementCount() != 900 {
		t.Fatalf("ElementCount = %d, want 900", m.ElementCount())
	}
	var want int64
	for _, k := range m.Keys() {
		want += int64(m.Block(k.I, k.J).NNZ())
	}
	if m.NNZ() != want {
		t.Fatalf("NNZ = %d, want %d", m.NNZ(), want)
	}
}
