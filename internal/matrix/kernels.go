package matrix

import (
	"fmt"
	"runtime"
	"sync"
)

// gemmBlock is the cache-tiling factor of the dense kernel. 64×64 float64
// tiles (32 KiB per operand tile) sit comfortably in L1/L2.
const gemmBlock = 64

// parallelThreshold is the minimum result-element count before the dense
// kernel fans out across goroutines; below it the spawn overhead dominates.
const parallelThreshold = 64 * 64 * 4

// Gemm computes C += A×B for dense blocks. It is the stand-in for the
// cublasDgemm / LAPACK dgemm call in the paper's local-multiplication step.
// Dimensions must agree: A is m×k, B is k×n, C is m×n.
func Gemm(c, a, b *Dense) {
	m, ka := a.Dims()
	kb, n := b.Dims()
	cm, cn := c.Dims()
	if ka != kb || cm != m || cn != n {
		panic(fmt.Sprintf("matrix: Gemm: dimension mismatch %dx%d × %dx%d -> %dx%d", m, ka, kb, n, cm, cn))
	}
	if m == 0 || n == 0 || ka == 0 {
		return
	}
	if m*n >= parallelThreshold && m >= 2 {
		gemmParallel(c, a, b)
		return
	}
	gemmRange(c, a, b, 0, m)
}

// gemmParallel splits the row range of C across GOMAXPROCS workers.
func gemmParallel(c, a, b *Dense) {
	m := a.RowsN
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			gemmRange(c, a, b, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// gemmRange computes rows [lo, hi) of C += A×B with i-k-j loop order and
// k-tiling, which keeps the B row stream sequential.
func gemmRange(c, a, b *Dense, lo, hi int) {
	k := a.ColsN
	n := b.ColsN
	for kk := 0; kk < k; kk += gemmBlock {
		kmax := kk + gemmBlock
		if kmax > k {
			kmax = k
		}
		for i := lo; i < hi; i++ {
			arow := a.Data[i*k : (i+1)*k]
			crow := c.Data[i*n : (i+1)*n]
			for p := kk; p < kmax; p++ {
				av := arow[p]
				if av == 0 {
					continue
				}
				brow := b.Data[p*n : (p+1)*n]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	}
}

// CSRMulDense computes C += A×B where A is CSR and B dense — the
// cusparseDcsrmm stand-in. A is m×k, B is k×n, C is m×n dense.
func CSRMulDense(c *Dense, a *CSR, b *Dense) {
	m, ka := a.Dims()
	kb, n := b.Dims()
	cm, cn := c.Dims()
	if ka != kb || cm != m || cn != n {
		panic(fmt.Sprintf("matrix: CSRMulDense: dimension mismatch %dx%d × %dx%d -> %dx%d", m, ka, kb, n, cm, cn))
	}
	for i := 0; i < m; i++ {
		crow := c.Data[i*n : (i+1)*n]
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			av := a.Val[p]
			brow := b.Data[a.ColIdx[p]*n : (a.ColIdx[p]+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// DenseMulCSC computes C += A×B where A is dense and B is CSC. A is m×k,
// B is k×n, C is m×n dense.
func DenseMulCSC(c *Dense, a *Dense, b *CSC) {
	m, ka := a.Dims()
	kb, n := b.Dims()
	cm, cn := c.Dims()
	if ka != kb || cm != m || cn != n {
		panic(fmt.Sprintf("matrix: DenseMulCSC: dimension mismatch %dx%d × %dx%d -> %dx%d", m, ka, kb, n, cm, cn))
	}
	for j := 0; j < n; j++ {
		for p := b.ColPtr[j]; p < b.ColPtr[j+1]; p++ {
			bk := b.RowIdx[p]
			bv := b.Val[p]
			for i := 0; i < m; i++ {
				c.Data[i*n+j] += a.Data[i*ka+bk] * bv
			}
		}
	}
}

// CSRMulCSR computes A×B for two CSR operands, returning a CSR result. The
// classical Gustavson row-merge algorithm; used when both inputs are sparse.
func CSRMulCSR(a, b *CSR) *CSR {
	m, ka := a.Dims()
	kb, n := b.Dims()
	if ka != kb {
		panic(fmt.Sprintf("matrix: CSRMulCSR: dimension mismatch %dx%d × %dx%d", m, ka, kb, n))
	}
	out := &CSR{RowsN: m, ColsN: n, RowPtr: make([]int, m+1)}
	acc := make([]float64, n)
	marker := make([]int, n)
	for i := range marker {
		marker[i] = -1
	}
	var cols []int
	for i := 0; i < m; i++ {
		cols = cols[:0]
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			k := a.ColIdx[p]
			av := a.Val[p]
			for q := b.RowPtr[k]; q < b.RowPtr[k+1]; q++ {
				j := b.ColIdx[q]
				if marker[j] != i {
					marker[j] = i
					acc[j] = 0
					cols = append(cols, j)
				}
				acc[j] += av * b.Val[q]
			}
		}
		// Deterministic output: ascending column order within the row.
		insertionSortInts(cols)
		for _, j := range cols {
			if acc[j] != 0 {
				out.ColIdx = append(out.ColIdx, j)
				out.Val = append(out.Val, acc[j])
			}
		}
		out.RowPtr[i+1] = len(out.Val)
	}
	return out
}

func insertionSortInts(s []int) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

// Mul multiplies two blocks of any formats into a fresh block, densifying as
// the formats require. Sparse×sparse stays sparse; any dense operand makes
// the result dense. This is the dispatch used by the engine's local
// multiplication step when a task multiplies a pair of blocks.
func Mul(a, b Block) Block {
	switch av := a.(type) {
	case *Dense:
		switch bv := b.(type) {
		case *Dense:
			_, n := bv.Dims()
			m, _ := av.Dims()
			c := NewDense(m, n)
			Gemm(c, av, bv)
			return c
		case *CSC:
			m, _ := av.Dims()
			_, n := bv.Dims()
			c := NewDense(m, n)
			DenseMulCSC(c, av, bv)
			return c
		case *CSR:
			m, _ := av.Dims()
			_, n := bv.Dims()
			c := NewDense(m, n)
			DenseMulCSC(c, av, NewCSCFromCSR(bv))
			return c
		}
	case *CSR:
		switch bv := b.(type) {
		case *Dense:
			m, _ := av.Dims()
			_, n := bv.Dims()
			c := NewDense(m, n)
			CSRMulDense(c, av, bv)
			return c
		case *CSR:
			return CSRMulCSR(av, bv)
		case *CSC:
			return CSRMulCSR(av, cscToCSR(bv))
		}
	case *CSC:
		return Mul(cscToCSR(av), b)
	}
	panic(fmt.Sprintf("matrix: Mul: unsupported operand formats %v × %v", a.Format(), b.Format()))
}

// MulAdd multiplies a×b and accumulates into the dense accumulator c
// (allocating it when nil), returning the accumulator. This is the shape the
// k-axis aggregation in a cuboid wants: one resident C buffer, many += calls.
func MulAdd(c *Dense, a, b Block) *Dense {
	m, _ := a.Dims()
	_, n := b.Dims()
	if c == nil {
		c = NewDense(m, n)
	} else if cm, cn := c.Dims(); cm != m || cn != n {
		panic(fmt.Sprintf("matrix: MulAdd: accumulator %dx%d does not match product %dx%d", cm, cn, m, n))
	}
	switch av := a.(type) {
	case *Dense:
		switch bv := b.(type) {
		case *Dense:
			Gemm(c, av, bv)
		case *CSC:
			DenseMulCSC(c, av, bv)
		case *CSR:
			DenseMulCSC(c, av, NewCSCFromCSR(bv))
		}
	case *CSR:
		switch bv := b.(type) {
		case *Dense:
			CSRMulDense(c, av, bv)
		default:
			AddInto(c, Mul(a, b))
		}
	default:
		AddInto(c, Mul(a, b))
	}
	return c
}

func cscToCSR(m *CSC) *CSR {
	// The CSC arrays reinterpreted are the CSR of the transpose; transposing
	// that CSR recovers the original matrix in CSR form.
	t := &CSR{RowsN: m.ColsN, ColsN: m.RowsN, RowPtr: m.ColPtr, ColIdx: m.RowIdx, Val: m.Val}
	return t.Transpose()
}

// AddInto accumulates src into dst element-wise; dst must be dense and the
// dimensions must match.
func AddInto(dst *Dense, src Block) {
	sr, sc := src.Dims()
	if dst.RowsN != sr || dst.ColsN != sc {
		panic(fmt.Sprintf("matrix: AddInto: dimension mismatch %dx%d += %dx%d", dst.RowsN, dst.ColsN, sr, sc))
	}
	switch s := src.(type) {
	case *Dense:
		for i, v := range s.Data {
			dst.Data[i] += v
		}
	case *CSR:
		for i := 0; i < s.RowsN; i++ {
			for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
				dst.Data[i*dst.ColsN+s.ColIdx[p]] += s.Val[p]
			}
		}
	case *CSC:
		for j := 0; j < s.ColsN; j++ {
			for p := s.ColPtr[j]; p < s.ColPtr[j+1]; p++ {
				dst.Data[s.RowIdx[p]*dst.ColsN+j] += s.Val[p]
			}
		}
	default:
		for i := 0; i < sr; i++ {
			for j := 0; j < sc; j++ {
				dst.Data[i*dst.ColsN+j] += src.At(i, j)
			}
		}
	}
}

// Add returns a+b as a fresh dense block.
func Add(a, b Block) *Dense {
	ar, ac := a.Dims()
	br, bc := b.Dims()
	if ar != br || ac != bc {
		panic(fmt.Sprintf("matrix: Add: dimension mismatch %dx%d + %dx%d", ar, ac, br, bc))
	}
	out := a.Dense()
	AddInto(out, b)
	return out
}

// Sub returns a-b as a fresh dense block.
func Sub(a, b Block) *Dense {
	ar, ac := a.Dims()
	br, bc := b.Dims()
	if ar != br || ac != bc {
		panic(fmt.Sprintf("matrix: Sub: dimension mismatch %dx%d - %dx%d", ar, ac, br, bc))
	}
	out := a.Dense()
	switch s := b.(type) {
	case *Dense:
		for i, v := range s.Data {
			out.Data[i] -= v
		}
	default:
		bd := b.Dense()
		for i, v := range bd.Data {
			out.Data[i] -= v
		}
	}
	return out
}

// Hadamard returns the element-wise product a∘b as a fresh dense block.
func Hadamard(a, b Block) *Dense {
	ar, ac := a.Dims()
	br, bc := b.Dims()
	if ar != br || ac != bc {
		panic(fmt.Sprintf("matrix: Hadamard: dimension mismatch %dx%d ∘ %dx%d", ar, ac, br, bc))
	}
	out := a.Dense()
	switch s := b.(type) {
	case *Dense:
		for i, v := range s.Data {
			out.Data[i] *= v
		}
	default:
		bd := b.Dense()
		for i, v := range bd.Data {
			out.Data[i] *= v
		}
	}
	return out
}

// DivElem returns a⊘b element-wise; denominators with magnitude below eps are
// clamped to eps to keep GNMF updates finite, matching the common epsilon
// guard in NMF implementations.
func DivElem(a, b Block, eps float64) *Dense {
	ar, ac := a.Dims()
	br, bc := b.Dims()
	if ar != br || ac != bc {
		panic(fmt.Sprintf("matrix: DivElem: dimension mismatch %dx%d / %dx%d", ar, ac, br, bc))
	}
	out := a.Dense()
	bd, ok := b.(*Dense)
	if !ok {
		bd = b.Dense()
	}
	for i, v := range bd.Data {
		den := v
		if den < eps && den > -eps {
			den = eps
		}
		out.Data[i] /= den
	}
	return out
}

// Scale returns s·a as a fresh dense block.
func Scale(s float64, a Block) *Dense {
	out := a.Dense()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// Transpose returns the transpose of any block, preserving sparsity: sparse
// inputs yield CSR, dense inputs yield dense.
func Transpose(a Block) Block {
	switch v := a.(type) {
	case *Dense:
		return v.Transpose()
	case *CSR:
		return v.Transpose()
	case *CSC:
		return cscToCSR(v).Transpose()
	default:
		return a.Dense().Transpose()
	}
}
