package matrix

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// gemmBlock is the cache-tiling factor of the dense kernel. 64×64 float64
// tiles (32 KiB per operand tile) sit comfortably in L1/L2.
const gemmBlock = 64

// parallelThreshold is the minimum result-element count before the dense
// kernel fans out across goroutines; below it the spawn overhead dominates.
// A var so equivalence tests can force the parallel path on small inputs.
var parallelThreshold = 64 * 64 * 4

// sparseFlopsThreshold is the minimum estimated scalar-multiply count before
// a sparse kernel fans out. Sparse products do far less work per output
// element than GEMM, so the gate is on estimated flops, not result size.
var sparseFlopsThreshold = 1 << 15

// kernelWorkers overrides the kernel fan-out width; 0 means GOMAXPROCS.
var kernelWorkers atomic.Int32

// SetKernelWorkers bounds the goroutines a single kernel call fans out to.
// n <= 0 restores the default (GOMAXPROCS). Tests use this to exercise the
// parallel paths at fixed widths; benchmarks use it to pin the serial path.
func SetKernelWorkers(n int) {
	if n < 0 {
		n = 0
	}
	kernelWorkers.Store(int32(n))
}

// KernelWorkers returns the current kernel fan-out width.
func KernelWorkers() int {
	if n := kernelWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Gemm computes C += A×B for dense blocks. It is the stand-in for the
// cublasDgemm / LAPACK dgemm call in the paper's local-multiplication step.
// Dimensions must agree: A is m×k, B is k×n, C is m×n.
func Gemm(c, a, b *Dense) {
	m, ka := a.Dims()
	kb, n := b.Dims()
	cm, cn := c.Dims()
	if ka != kb || cm != m || cn != n {
		panic(fmt.Sprintf("matrix: Gemm: dimension mismatch %dx%d × %dx%d -> %dx%d", m, ka, kb, n, cm, cn))
	}
	if m == 0 || n == 0 || ka == 0 {
		return
	}
	if workers := KernelWorkers(); workers > 1 && m >= 2 && m*n >= parallelThreshold {
		gemmParallel(c, a, b, workers)
		return
	}
	gemmRange(c, a, b, 0, m)
}

// gemmParallel splits the row range of C across workers. Each row of C is
// computed by exactly one goroutine with the same per-element accumulation
// order as the serial path, so results are bit-identical for any width.
func gemmParallel(c, a, b *Dense, workers int) {
	m := a.RowsN
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			gemmRange(c, a, b, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// gemmRange computes rows [lo, hi) of C += A×B with k-tiling and a
// register-blocked micro-kernel that advances four C rows at once: each B
// row is streamed through the cache exactly once per four output rows
// (4× less B traffic than the seed's row-at-a-time AXPY) and the inner
// loop carries four independent multiply-add chains. Wider row groups were
// measured slower (register spills and five concurrent write streams);
// see kernels_bench_test.go. Every C element still accumulates in
// ascending-k order, so results are bit-identical to the naive i-k-j loop
// regardless of how rows are grouped or ranges are split.
func gemmRange(c, a, b *Dense, lo, hi int) {
	k := a.ColsN
	n := b.ColsN
	for kk := 0; kk < k; kk += gemmBlock {
		kmax := kk + gemmBlock
		if kmax > k {
			kmax = k
		}
		i := lo
		for ; i+4 <= hi; i += 4 {
			a0 := a.Data[i*k:]
			a1 := a.Data[(i+1)*k:]
			a2 := a.Data[(i+2)*k:]
			a3 := a.Data[(i+3)*k:]
			c0 := c.Data[i*n : (i+1)*n]
			c1 := c.Data[(i+1)*n : (i+2)*n : (i+2)*n]
			c2 := c.Data[(i+2)*n : (i+3)*n : (i+3)*n]
			c3 := c.Data[(i+3)*n : (i+4)*n : (i+4)*n]
			for p := kk; p < kmax; p++ {
				v0, v1, v2, v3 := a0[p], a1[p], a2[p], a3[p]
				if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
					continue
				}
				brow := b.Data[p*n : (p+1)*n]
				for j, bv := range brow {
					c0[j] += v0 * bv
					c1[j] += v1 * bv
					c2[j] += v2 * bv
					c3[j] += v3 * bv
				}
			}
		}
		for ; i < hi; i++ {
			arow := a.Data[i*k : (i+1)*k]
			crow := c.Data[i*n : (i+1)*n]
			for p := kk; p < kmax; p++ {
				av := arow[p]
				if av == 0 {
					continue
				}
				brow := b.Data[p*n : (p+1)*n]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	}
}

// CSRMulDense computes C += A×B where A is CSR and B dense — the
// cusparseDcsrmm stand-in. A is m×k, B is k×n, C is m×n dense. Rows are
// fanned out across workers at nnz-balanced boundaries so skewed rows do
// not serialize the call.
func CSRMulDense(c *Dense, a *CSR, b *Dense) {
	m, ka := a.Dims()
	kb, n := b.Dims()
	cm, cn := c.Dims()
	if ka != kb || cm != m || cn != n {
		panic(fmt.Sprintf("matrix: CSRMulDense: dimension mismatch %dx%d × %dx%d -> %dx%d", m, ka, kb, n, cm, cn))
	}
	if m == 0 || n == 0 {
		return
	}
	workers := KernelWorkers()
	if workers > 1 && m >= 2 && a.NNZ()*n >= sparseFlopsThreshold {
		bounds := prefixSplits(a.RowPtr, workers)
		var wg sync.WaitGroup
		for w := 0; w+1 < len(bounds); w++ {
			lo, hi := bounds[w], bounds[w+1]
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				csrMulDenseRange(c, a, b, lo, hi)
			}(lo, hi)
		}
		wg.Wait()
		return
	}
	csrMulDenseRange(c, a, b, 0, m)
}

// csrMulDenseRange computes C rows [lo, hi). Row entries are consumed four
// at a time so one pass over the C row performs four AXPYs, quartering the
// read-modify-write traffic on C that dominates this kernel.
func csrMulDenseRange(c *Dense, a *CSR, b *Dense, lo, hi int) {
	n := b.ColsN
	bd := b.Data
	for i := lo; i < hi; i++ {
		crow := c.Data[i*n : (i+1)*n]
		p := a.RowPtr[i]
		end := a.RowPtr[i+1]
		for ; p+4 <= end; p += 4 {
			v0, v1, v2, v3 := a.Val[p], a.Val[p+1], a.Val[p+2], a.Val[p+3]
			r0 := bd[a.ColIdx[p]*n:][:n]
			r1 := bd[a.ColIdx[p+1]*n:][:n]
			r2 := bd[a.ColIdx[p+2]*n:][:n]
			r3 := bd[a.ColIdx[p+3]*n:][:n]
			for j := range crow {
				crow[j] += v0*r0[j] + v1*r1[j] + v2*r2[j] + v3*r3[j]
			}
		}
		for ; p < end; p++ {
			av := a.Val[p]
			brow := bd[a.ColIdx[p]*n:][:n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// DenseMulCSC computes C += A×B where A is dense and B is CSC. A is m×k,
// B is k×n, C is m×n dense. The loop is row-blocked: the outer loop walks
// rows of A/C so every C write is sequential and the A row stays cache
// resident, instead of the former column-outer form whose stride-n writes
// touched a new cache line per element.
func DenseMulCSC(c *Dense, a *Dense, b *CSC) {
	m, ka := a.Dims()
	kb, n := b.Dims()
	cm, cn := c.Dims()
	if ka != kb || cm != m || cn != n {
		panic(fmt.Sprintf("matrix: DenseMulCSC: dimension mismatch %dx%d × %dx%d -> %dx%d", m, ka, kb, n, cm, cn))
	}
	if m == 0 || n == 0 {
		return
	}
	workers := KernelWorkers()
	if workers > 1 && m >= 2 && b.NNZ()*m >= sparseFlopsThreshold {
		if workers > m {
			workers = m
		}
		var wg sync.WaitGroup
		chunk := (m + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > m {
				hi = m
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				denseMulCSCRange(c, a, b, lo, hi)
			}(lo, hi)
		}
		wg.Wait()
		return
	}
	denseMulCSCRange(c, a, b, 0, m)
}

// denseMulCSCRange computes C rows [lo, hi): for each row the B columns are
// reduced as dot products against the resident A row, with a two-way
// unrolled accumulator to break the FP dependency chain.
func denseMulCSCRange(c, a *Dense, b *CSC, lo, hi int) {
	ka := a.ColsN
	n := b.ColsN
	for i := lo; i < hi; i++ {
		arow := a.Data[i*ka : (i+1)*ka]
		crow := c.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			p := b.ColPtr[j]
			end := b.ColPtr[j+1]
			if p == end {
				continue
			}
			var s0, s1 float64
			for ; p+2 <= end; p += 2 {
				s0 += arow[b.RowIdx[p]] * b.Val[p]
				s1 += arow[b.RowIdx[p+1]] * b.Val[p+1]
			}
			if p < end {
				s0 += arow[b.RowIdx[p]] * b.Val[p]
			}
			crow[j] += s0 + s1
		}
	}
}

// CSRMulCSR computes A×B for two CSR operands, returning a CSR result. The
// classical Gustavson row-merge algorithm; used when both inputs are sparse.
// Rows of A are fanned out across workers at flop-balanced boundaries and
// the per-range partial CSRs are stitched, so the output is identical to
// the serial row-by-row construction for any worker count.
func CSRMulCSR(a, b *CSR) *CSR {
	m, ka := a.Dims()
	kb, n := b.Dims()
	if ka != kb {
		panic(fmt.Sprintf("matrix: CSRMulCSR: dimension mismatch %dx%d × %dx%d", m, ka, kb, n))
	}
	workers := KernelWorkers()
	if workers > 1 && m >= 2 {
		// Per-row work is the number of scalar multiplies: the sum of B-row
		// lengths over the row's entries. Its prefix array gives balanced
		// split points even when nnz is concentrated in a few rows.
		work := make([]int, m+1)
		for i := 0; i < m; i++ {
			w := 0
			for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
				k := a.ColIdx[p]
				w += b.RowPtr[k+1] - b.RowPtr[k]
			}
			work[i+1] = work[i] + w
		}
		if work[m] >= sparseFlopsThreshold {
			bounds := prefixSplits(work, workers)
			parts := make([]*CSR, len(bounds)-1)
			var wg sync.WaitGroup
			for w := 0; w+1 < len(bounds); w++ {
				lo, hi := bounds[w], bounds[w+1]
				if lo >= hi {
					continue
				}
				wg.Add(1)
				go func(w, lo, hi int) {
					defer wg.Done()
					parts[w] = csrMulCSRRange(a, b, lo, hi)
				}(w, lo, hi)
			}
			wg.Wait()
			return stitchCSRParts(m, n, bounds, parts)
		}
	}
	return csrMulCSRRange(a, b, 0, m)
}

// csrMulCSRRange runs Gustavson on A rows [lo, hi), returning a partial CSR
// whose row r corresponds to global row lo+r.
func csrMulCSRRange(a, b *CSR, lo, hi int) *CSR {
	n := b.ColsN
	out := &CSR{RowsN: hi - lo, ColsN: n, RowPtr: make([]int, hi-lo+1)}
	acc := getScratch(n) // values are reset lazily via marker, no zeroing needed
	defer putScratch(acc)
	marker := make([]int, n)
	for i := range marker {
		marker[i] = -1
	}
	var cols []int
	for i := lo; i < hi; i++ {
		cols = cols[:0]
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			k := a.ColIdx[p]
			av := a.Val[p]
			for q := b.RowPtr[k]; q < b.RowPtr[k+1]; q++ {
				j := b.ColIdx[q]
				if marker[j] != i {
					marker[j] = i
					acc[j] = 0
					cols = append(cols, j)
				}
				acc[j] += av * b.Val[q]
			}
		}
		// Deterministic output: ascending column order within the row.
		sortCols(cols)
		for _, j := range cols {
			if acc[j] != 0 {
				out.ColIdx = append(out.ColIdx, j)
				out.Val = append(out.Val, acc[j])
			}
		}
		out.RowPtr[i-lo+1] = len(out.Val)
	}
	return out
}

// stitchCSRParts concatenates per-range partial CSRs into the full result.
func stitchCSRParts(m, n int, bounds []int, parts []*CSR) *CSR {
	total := 0
	for _, p := range parts {
		if p != nil {
			total += len(p.Val)
		}
	}
	out := &CSR{
		RowsN:  m,
		ColsN:  n,
		RowPtr: make([]int, m+1),
		ColIdx: make([]int, 0, total),
		Val:    make([]float64, 0, total),
	}
	for w, part := range parts {
		if part == nil {
			continue
		}
		lo := bounds[w]
		offset := len(out.Val)
		for r := 1; r <= part.RowsN; r++ {
			out.RowPtr[lo+r] = offset + part.RowPtr[r]
		}
		out.ColIdx = append(out.ColIdx, part.ColIdx...)
		out.Val = append(out.Val, part.Val...)
	}
	// Rows past the last non-empty part (or inside empty spans) inherit the
	// running offset.
	for i := 1; i <= m; i++ {
		if out.RowPtr[i] < out.RowPtr[i-1] {
			out.RowPtr[i] = out.RowPtr[i-1]
		}
	}
	return out
}

// prefixSplits returns parts+1 row boundaries over a monotone prefix array
// (RowPtr or a work prefix) such that each span carries roughly equal
// weight. Boundaries are non-decreasing and cover [0, len(prefix)-1).
func prefixSplits(prefix []int, parts int) []int {
	m := len(prefix) - 1
	if parts > m {
		parts = m
	}
	if parts < 1 {
		parts = 1
	}
	bounds := make([]int, parts+1)
	total := prefix[m]
	for w := 1; w < parts; w++ {
		target := int(int64(total) * int64(w) / int64(parts))
		idx := sort.SearchInts(prefix, target)
		if idx > m {
			idx = m
		}
		if idx < bounds[w-1] {
			idx = bounds[w-1]
		}
		bounds[w] = idx
	}
	bounds[parts] = m
	return bounds
}

// hybridSortThreshold is the slice length above which insertion sort's
// O(r²) behavior loses to the stdlib sort; dense-ish Gustavson result rows
// routinely exceed it.
const hybridSortThreshold = 32

// sortCols orders a result row's column indices: insertion sort for the
// short rows that dominate sparse products, stdlib sort beyond the
// threshold.
func sortCols(s []int) {
	if len(s) <= hybridSortThreshold {
		insertionSortInts(s)
		return
	}
	sort.Ints(s)
}

func insertionSortInts(s []int) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

// Mul multiplies two blocks of any formats into a fresh block, densifying as
// the formats require. Sparse×sparse stays sparse; any dense operand makes
// the result dense. This is the dispatch used by the engine's local
// multiplication step when a task multiplies a pair of blocks.
func Mul(a, b Block) Block {
	switch av := a.(type) {
	case *Dense:
		switch bv := b.(type) {
		case *Dense:
			_, n := bv.Dims()
			m, _ := av.Dims()
			c := NewDense(m, n)
			Gemm(c, av, bv)
			return c
		case *CSC:
			m, _ := av.Dims()
			_, n := bv.Dims()
			c := NewDense(m, n)
			DenseMulCSC(c, av, bv)
			return c
		case *CSR:
			m, _ := av.Dims()
			_, n := bv.Dims()
			c := NewDense(m, n)
			DenseMulCSC(c, av, NewCSCFromCSR(bv))
			return c
		}
	case *CSR:
		switch bv := b.(type) {
		case *Dense:
			m, _ := av.Dims()
			_, n := bv.Dims()
			c := NewDense(m, n)
			CSRMulDense(c, av, bv)
			return c
		case *CSR:
			return CSRMulCSR(av, bv)
		case *CSC:
			return CSRMulCSR(av, cscToCSR(bv))
		}
	case *CSC:
		return Mul(cscToCSR(av), b)
	}
	panic(fmt.Sprintf("matrix: Mul: unsupported operand formats %v × %v", a.Format(), b.Format()))
}

// MulAdd multiplies a×b and accumulates into the dense accumulator c
// (allocating it from the dense-buffer pool when nil), returning the
// accumulator. This is the shape the k-axis aggregation in a cuboid wants:
// one resident C buffer, many += calls. Callers that can prove the
// accumulator dies (the aggregation merge in core) release it with
// PutDense; accumulators that escape into results simply stay out of the
// pool.
func MulAdd(c *Dense, a, b Block) *Dense {
	m, _ := a.Dims()
	_, n := b.Dims()
	if c == nil {
		c = GetDense(m, n)
	} else if cm, cn := c.Dims(); cm != m || cn != n {
		panic(fmt.Sprintf("matrix: MulAdd: accumulator %dx%d does not match product %dx%d", cm, cn, m, n))
	}
	switch av := a.(type) {
	case *Dense:
		switch bv := b.(type) {
		case *Dense:
			Gemm(c, av, bv)
		case *CSC:
			DenseMulCSC(c, av, bv)
		case *CSR:
			DenseMulCSC(c, av, NewCSCFromCSR(bv))
		}
	case *CSR:
		switch bv := b.(type) {
		case *Dense:
			CSRMulDense(c, av, bv)
		default:
			AddInto(c, Mul(a, b))
		}
	default:
		AddInto(c, Mul(a, b))
	}
	return c
}

func cscToCSR(m *CSC) *CSR {
	// The CSC arrays reinterpreted are the CSR of the transpose; transposing
	// that CSR recovers the original matrix in CSR form.
	t := &CSR{RowsN: m.ColsN, ColsN: m.RowsN, RowPtr: m.ColPtr, ColIdx: m.RowIdx, Val: m.Val}
	return t.Transpose()
}

// AddInto accumulates src into dst element-wise; dst must be dense and the
// dimensions must match.
func AddInto(dst *Dense, src Block) {
	sr, sc := src.Dims()
	if dst.RowsN != sr || dst.ColsN != sc {
		panic(fmt.Sprintf("matrix: AddInto: dimension mismatch %dx%d += %dx%d", dst.RowsN, dst.ColsN, sr, sc))
	}
	switch s := src.(type) {
	case *Dense:
		for i, v := range s.Data {
			dst.Data[i] += v
		}
	case *CSR:
		for i := 0; i < s.RowsN; i++ {
			for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
				dst.Data[i*dst.ColsN+s.ColIdx[p]] += s.Val[p]
			}
		}
	case *CSC:
		for j := 0; j < s.ColsN; j++ {
			for p := s.ColPtr[j]; p < s.ColPtr[j+1]; p++ {
				dst.Data[s.RowIdx[p]*dst.ColsN+j] += s.Val[p]
			}
		}
	default:
		for i := 0; i < sr; i++ {
			for j := 0; j < sc; j++ {
				dst.Data[i*dst.ColsN+j] += src.At(i, j)
			}
		}
	}
}

// Add returns a+b as a fresh dense block.
func Add(a, b Block) *Dense {
	ar, ac := a.Dims()
	br, bc := b.Dims()
	if ar != br || ac != bc {
		panic(fmt.Sprintf("matrix: Add: dimension mismatch %dx%d + %dx%d", ar, ac, br, bc))
	}
	out := a.Dense()
	AddInto(out, b)
	return out
}

// Sub returns a-b as a fresh dense block.
func Sub(a, b Block) *Dense {
	ar, ac := a.Dims()
	br, bc := b.Dims()
	if ar != br || ac != bc {
		panic(fmt.Sprintf("matrix: Sub: dimension mismatch %dx%d - %dx%d", ar, ac, br, bc))
	}
	out := a.Dense()
	switch s := b.(type) {
	case *Dense:
		for i, v := range s.Data {
			out.Data[i] -= v
		}
	default:
		bd := b.Dense()
		for i, v := range bd.Data {
			out.Data[i] -= v
		}
	}
	return out
}

// Hadamard returns the element-wise product a∘b as a fresh dense block.
func Hadamard(a, b Block) *Dense {
	ar, ac := a.Dims()
	br, bc := b.Dims()
	if ar != br || ac != bc {
		panic(fmt.Sprintf("matrix: Hadamard: dimension mismatch %dx%d ∘ %dx%d", ar, ac, br, bc))
	}
	out := a.Dense()
	switch s := b.(type) {
	case *Dense:
		for i, v := range s.Data {
			out.Data[i] *= v
		}
	default:
		bd := b.Dense()
		for i, v := range bd.Data {
			out.Data[i] *= v
		}
	}
	return out
}

// DivElem returns a⊘b element-wise; denominators with magnitude below eps are
// clamped to eps to keep GNMF updates finite, matching the common epsilon
// guard in NMF implementations.
func DivElem(a, b Block, eps float64) *Dense {
	ar, ac := a.Dims()
	br, bc := b.Dims()
	if ar != br || ac != bc {
		panic(fmt.Sprintf("matrix: DivElem: dimension mismatch %dx%d / %dx%d", ar, ac, br, bc))
	}
	out := a.Dense()
	bd, ok := b.(*Dense)
	if !ok {
		bd = b.Dense()
	}
	for i, v := range bd.Data {
		den := v
		if den < eps && den > -eps {
			den = eps
		}
		out.Data[i] /= den
	}
	return out
}

// Scale returns s·a as a fresh dense block.
func Scale(s float64, a Block) *Dense {
	out := a.Dense()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// Transpose returns the transpose of any block, preserving sparsity: sparse
// inputs yield CSR, dense inputs yield dense.
func Transpose(a Block) Block {
	switch v := a.(type) {
	case *Dense:
		return v.Transpose()
	case *CSR:
		return v.Transpose()
	case *CSC:
		return cscToCSR(v).Transpose()
	default:
		return a.Dense().Transpose()
	}
}
