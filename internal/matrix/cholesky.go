package matrix

import (
	"fmt"
	"math"
)

// Cholesky factors a symmetric positive-definite matrix A = L·Lᵀ and
// returns the lower-triangular L. Cholesky factorization is one of the
// paper's motivating applications (§1); locally it is also the solver ALS
// needs for its r×r normal equations. A non-positive-definite input
// returns an error rather than NaNs.
func Cholesky(a *Dense) (*Dense, error) {
	n, m := a.Dims()
	if n != m {
		return nil, fmt.Errorf("matrix: Cholesky: matrix is %dx%d, not square", n, m)
	}
	l := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("matrix: Cholesky: not positive definite at pivot %d (%g)", i, sum)
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveCholesky solves A·X = B for X given the Cholesky factor L of A
// (A = L·Lᵀ), by forward then backward substitution, column by column of B.
func SolveCholesky(l *Dense, b *Dense) (*Dense, error) {
	n, m := l.Dims()
	if n != m {
		return nil, fmt.Errorf("matrix: SolveCholesky: factor is %dx%d, not square", n, m)
	}
	br, bc := b.Dims()
	if br != n {
		return nil, fmt.Errorf("matrix: SolveCholesky: B has %d rows, want %d", br, n)
	}
	x := NewDense(n, bc)
	y := make([]float64, n)
	for c := 0; c < bc; c++ {
		// Forward: L·y = b.
		for i := 0; i < n; i++ {
			sum := b.At(i, c)
			for k := 0; k < i; k++ {
				sum -= l.At(i, k) * y[k]
			}
			y[i] = sum / l.At(i, i)
		}
		// Backward: Lᵀ·x = y.
		for i := n - 1; i >= 0; i-- {
			sum := y[i]
			for k := i + 1; k < n; k++ {
				sum -= l.At(k, i) * x.At(k, c)
			}
			x.Set(i, c, sum/l.At(i, i))
		}
	}
	return x, nil
}

// SolveSPD solves A·X = B for a symmetric positive-definite A in one call.
func SolveSPD(a, b *Dense) (*Dense, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	return SolveCholesky(l, b)
}
