package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveMul is the reference O(mnk) product used to check every kernel.
func naiveMul(a, b *Dense) *Dense {
	m, k := a.Dims()
	_, n := b.Dims()
	c := NewDense(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

func TestGemmMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 4, 5}, {7, 7, 7}, {16, 8, 32}, {65, 130, 67}} {
		a := RandomDense(rng, dims[0], dims[1])
		b := RandomDense(rng, dims[1], dims[2])
		c := NewDense(dims[0], dims[2])
		Gemm(c, a, b)
		if !c.EqualApprox(naiveMul(a, b), 1e-9) {
			t.Fatalf("Gemm mismatch for %v", dims)
		}
	}
}

func TestGemmParallelPathMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Force the parallel path: result must exceed parallelThreshold.
	a := RandomDense(rng, 160, 90)
	b := RandomDense(rng, 90, 140)
	c := NewDense(160, 140)
	Gemm(c, a, b)
	if !c.EqualApprox(naiveMul(a, b), 1e-9) {
		t.Fatal("parallel Gemm mismatch")
	}
}

func TestGemmAccumulates(t *testing.T) {
	a := NewDenseData(1, 1, []float64{2})
	b := NewDenseData(1, 1, []float64{3})
	c := NewDenseData(1, 1, []float64{10})
	Gemm(c, a, b)
	if c.At(0, 0) != 16 {
		t.Fatalf("Gemm must accumulate: got %g, want 16", c.At(0, 0))
	}
}

func TestGemmDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Gemm did not panic")
		}
	}()
	Gemm(NewDense(2, 2), NewDense(2, 3), NewDense(2, 2))
}

func TestCSRMulDenseMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := RandomSparse(rng, 20, 30, 0.2)
	b := RandomDense(rng, 30, 10)
	c := NewDense(20, 10)
	CSRMulDense(c, a, b)
	if !c.EqualApprox(naiveMul(a.Dense(), b), 1e-9) {
		t.Fatal("CSRMulDense mismatch")
	}
}

func TestDenseMulCSCMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := RandomDense(rng, 12, 18)
	b := NewCSCFromDense(RandomSparse(rng, 18, 9, 0.3).Dense())
	c := NewDense(12, 9)
	DenseMulCSC(c, a, b)
	if !c.EqualApprox(naiveMul(a, b.Dense()), 1e-9) {
		t.Fatal("DenseMulCSC mismatch")
	}
}

func TestCSRMulCSRMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := RandomSparse(rng, 15, 25, 0.15)
	b := RandomSparse(rng, 25, 10, 0.2)
	got := CSRMulCSR(a, b)
	if !got.Dense().EqualApprox(naiveMul(a.Dense(), b.Dense()), 1e-9) {
		t.Fatal("CSRMulCSR mismatch")
	}
	// Column indices must be sorted within rows for downstream kernels.
	for i := 0; i < got.RowsN; i++ {
		for p := got.RowPtr[i] + 1; p < got.RowPtr[i+1]; p++ {
			if got.ColIdx[p-1] >= got.ColIdx[p] {
				t.Fatalf("row %d column indices not strictly increasing", i)
			}
		}
	}
}

// TestMulAllFormatPairs is the paper's format matrix: every combination of
// dense/CSR/CSC operands must produce the same product.
func TestMulAllFormatPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	ad := RandomSparse(rng, 9, 13, 0.4).Dense()
	bd := RandomSparse(rng, 13, 7, 0.4).Dense()
	want := naiveMul(ad, bd)
	as := []Block{ad, NewCSRFromDense(ad), NewCSCFromDense(ad)}
	bs := []Block{bd, NewCSRFromDense(bd), NewCSCFromDense(bd)}
	for _, a := range as {
		for _, b := range bs {
			got := Mul(a, b)
			if !got.Dense().EqualApprox(want, 1e-9) {
				t.Errorf("Mul(%v, %v) mismatch", a.Format(), b.Format())
			}
		}
	}
}

func TestMulAddAccumulatesAcrossK(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	// C = A1×B1 + A2×B2 computed through the accumulator path.
	a1, b1 := RandomDense(rng, 6, 4), RandomDense(rng, 4, 5)
	a2, b2 := RandomDense(rng, 6, 3), RandomDense(rng, 3, 5)
	acc := MulAdd(nil, a1, b1)
	acc = MulAdd(acc, a2, b2)
	want := Add(naiveMul(a1, b1), naiveMul(a2, b2))
	if !acc.EqualApprox(want, 1e-9) {
		t.Fatal("MulAdd accumulation mismatch")
	}
}

func TestMulAddSparseLeft(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := RandomSparse(rng, 8, 10, 0.3)
	b := RandomDense(rng, 10, 6)
	acc := MulAdd(nil, a, b)
	if !acc.EqualApprox(naiveMul(a.Dense(), b), 1e-9) {
		t.Fatal("MulAdd sparse-left mismatch")
	}
}

func TestMulAddWrongAccumulatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-shape accumulator did not panic")
		}
	}()
	MulAdd(NewDense(2, 2), NewDense(3, 3), NewDense(3, 3))
}

func TestAddSubHadamard(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	b := NewDenseData(2, 2, []float64{5, 6, 7, 8})
	if got := Add(a, b); !got.Equal(NewDenseData(2, 2, []float64{6, 8, 10, 12})) {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a); !got.Equal(NewDenseData(2, 2, []float64{4, 4, 4, 4})) {
		t.Fatalf("Sub = %v", got)
	}
	if got := Hadamard(a, b); !got.Equal(NewDenseData(2, 2, []float64{5, 12, 21, 32})) {
		t.Fatalf("Hadamard = %v", got)
	}
}

func TestAddIntoSparseFormats(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	base := RandomDense(rng, 6, 6)
	s := RandomSparse(rng, 6, 6, 0.3)
	want := Add(base, s.Dense())

	gotCSR := base.Clone()
	AddInto(gotCSR, s)
	if !gotCSR.EqualApprox(want, 1e-12) {
		t.Fatal("AddInto CSR mismatch")
	}
	gotCSC := base.Clone()
	AddInto(gotCSC, NewCSCFromCSR(s))
	if !gotCSC.EqualApprox(want, 1e-12) {
		t.Fatal("AddInto CSC mismatch")
	}
}

func TestDivElemEpsilonGuard(t *testing.T) {
	a := NewDenseData(1, 3, []float64{1, 2, 3})
	b := NewDenseData(1, 3, []float64{2, 0, 1e-12})
	eps := 1e-9
	got := DivElem(a, b, eps)
	if got.At(0, 0) != 0.5 {
		t.Fatalf("plain division wrong: %g", got.At(0, 0))
	}
	if want := 2 / eps; got.At(0, 1) != want {
		t.Fatalf("zero denominator not clamped: %g, want %g", got.At(0, 1), want)
	}
	if want := 3 / eps; got.At(0, 2) != want {
		t.Fatalf("tiny denominator not clamped: %g, want %g", got.At(0, 2), want)
	}
}

func TestScale(t *testing.T) {
	a := NewDenseData(1, 2, []float64{3, -4})
	if got := Scale(-2, a); !got.Equal(NewDenseData(1, 2, []float64{-6, 8})) {
		t.Fatalf("Scale = %v", got)
	}
}

func TestTransposeAllFormats(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	d := RandomSparse(rng, 5, 9, 0.4).Dense()
	want := d.Transpose()
	for _, b := range []Block{d, NewCSRFromDense(d), NewCSCFromDense(d)} {
		got := Transpose(b)
		if !got.Dense().Equal(want) {
			t.Errorf("Transpose(%v) mismatch", b.Format())
		}
	}
}

// Property: (A×B)ᵀ = Bᵀ×Aᵀ across random shapes and formats.
func TestMulTransposeIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a := RandomSparse(rng, m, k, 0.5)
		b := RandomDense(rng, k, n)
		left := Transpose(Mul(a, b)).Dense()
		right := Mul(Transpose(b), Transpose(a)).Dense()
		return left.EqualApprox(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: A×(B+C) = A×B + A×C (distributivity) for dense operands.
func TestMulDistributivityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := RandomDense(rng, m, k)
		b := RandomDense(rng, k, n)
		c := RandomDense(rng, k, n)
		left := Mul(a, Add(b, c)).Dense()
		right := Add(Mul(a, b), Mul(a, c))
		return left.EqualApprox(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: identity is neutral: I×A = A×I = A.
func TestMulIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(10), 1+rng.Intn(10)
		a := RandomDense(rng, m, n)
		im := identity(m)
		in := identity(n)
		return Mul(im, a).Dense().EqualApprox(a, 1e-12) &&
			Mul(a, in).Dense().EqualApprox(a, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func identity(n int) *Dense {
	d := NewDense(n, n)
	for i := 0; i < n; i++ {
		d.Set(i, i, 1)
	}
	return d
}

// Kernel benchmarks (including seed-vs-current regression comparisons)
// live in kernels_bench_test.go.
