// Package matrix provides the local (single-task) matrix kernels used by the
// DistME engine: dense row-major blocks, CSR/CSC sparse blocks, and the
// multiply / add / transpose / element-wise kernels that the paper delegates
// to LAPACK (CPU) and cuBLAS / cuSPARSE (GPU). Everything is pure Go so the
// distributed and GPU layers above it are fully testable and deterministic.
package matrix

import (
	"fmt"
	"math"
)

// Format identifies the physical representation of a block.
type Format int

const (
	// FormatDense is a row-major dense block.
	FormatDense Format = iota
	// FormatCSR is compressed sparse row.
	FormatCSR
	// FormatCSC is compressed sparse column.
	FormatCSC
)

// String returns the conventional short name of the format.
func (f Format) String() string {
	switch f {
	case FormatDense:
		return "dense"
	case FormatCSR:
		return "csr"
	case FormatCSC:
		return "csc"
	default:
		return fmt.Sprintf("format(%d)", int(f))
	}
}

// elemBytes is the size of one float64 element. Communication accounting all
// over the engine is elements×elemBytes, matching the paper's |A| element
// counts scaled to bytes.
const elemBytes = 8

// Block is any local matrix representation. A block is the basic unit of
// distributed computation (paper §2.1): the engine moves, multiplies and
// aggregates blocks; this interface is what those layers see.
type Block interface {
	// Dims returns the row and column counts.
	Dims() (rows, cols int)
	// NNZ returns the number of explicitly stored non-zero elements.
	NNZ() int
	// SizeBytes returns the in-memory payload size used for memory and
	// cost-model accounting. The bytes a block actually occupies on the
	// wire — where sparse blocks use compact index forms — come from
	// codec.EncodedBytes instead.
	SizeBytes() int64
	// At returns the element at (i, j). It panics when out of range.
	At(i, j int) float64
	// Dense materializes the block as a dense copy.
	Dense() *Dense
	// Format reports the physical representation.
	Format() Format
}

// Dense is a row-major dense matrix block.
type Dense struct {
	RowsN, ColsN int
	// Data holds RowsN×ColsN values, row-major.
	Data []float64
	// fromPool marks blocks whose backing array came from the dense-buffer
	// pool (see pool.go); only those are recycled by PutDense.
	fromPool bool
}

// NewDense allocates a zeroed rows×cols dense block.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: NewDense(%d, %d): negative dimension", rows, cols))
	}
	return &Dense{RowsN: rows, ColsN: cols, Data: make([]float64, rows*cols)}
}

// NewDenseData wraps data (row-major, length rows*cols) without copying.
func NewDenseData(rows, cols int, data []float64) *Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("matrix: NewDenseData(%d, %d): data length %d != %d", rows, cols, len(data), rows*cols))
	}
	return &Dense{RowsN: rows, ColsN: cols, Data: data}
}

// Dims returns the dimensions.
func (d *Dense) Dims() (int, int) { return d.RowsN, d.ColsN }

// NNZ counts the non-zero elements by scanning.
func (d *Dense) NNZ() int {
	n := 0
	for _, v := range d.Data {
		if v != 0 {
			n++
		}
	}
	return n
}

// SizeBytes is the dense payload size: rows×cols×8.
func (d *Dense) SizeBytes() int64 { return int64(len(d.Data)) * elemBytes }

// At returns element (i, j).
func (d *Dense) At(i, j int) float64 {
	d.check(i, j)
	return d.Data[i*d.ColsN+j]
}

// Set assigns element (i, j).
func (d *Dense) Set(i, j int, v float64) {
	d.check(i, j)
	d.Data[i*d.ColsN+j] = v
}

func (d *Dense) check(i, j int) {
	if i < 0 || i >= d.RowsN || j < 0 || j >= d.ColsN {
		panic(fmt.Sprintf("matrix: index (%d, %d) out of range %dx%d", i, j, d.RowsN, d.ColsN))
	}
}

// Dense returns a deep copy of the block.
func (d *Dense) Dense() *Dense {
	out := NewDense(d.RowsN, d.ColsN)
	copy(out.Data, d.Data)
	return out
}

// Format reports FormatDense.
func (d *Dense) Format() Format { return FormatDense }

// Row returns the i-th row as a subslice (not a copy).
func (d *Dense) Row(i int) []float64 {
	if i < 0 || i >= d.RowsN {
		panic(fmt.Sprintf("matrix: row %d out of range %d", i, d.RowsN))
	}
	return d.Data[i*d.ColsN : (i+1)*d.ColsN]
}

// Clone is an alias of Dense() with a clearer name at call sites that know
// the concrete type.
func (d *Dense) Clone() *Dense { return d.Dense() }

// Zero resets all elements to 0 in place.
func (d *Dense) Zero() {
	for i := range d.Data {
		d.Data[i] = 0
	}
}

// Equal reports whether d and other have identical dimensions and elements.
func (d *Dense) Equal(other *Dense) bool {
	if d.RowsN != other.RowsN || d.ColsN != other.ColsN {
		return false
	}
	for i, v := range d.Data {
		if v != other.Data[i] {
			return false
		}
	}
	return true
}

// EqualApprox reports whether d and other match within tol element-wise.
func (d *Dense) EqualApprox(other *Dense, tol float64) bool {
	if d.RowsN != other.RowsN || d.ColsN != other.ColsN {
		return false
	}
	for i, v := range d.Data {
		if diff := math.Abs(v - other.Data[i]); diff > tol {
			return false
		}
	}
	return true
}

// FrobeniusNorm returns sqrt(sum of squared elements).
func (d *Dense) FrobeniusNorm() float64 {
	var s float64
	for _, v := range d.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Transpose returns a new dense block that is the transpose of d.
func (d *Dense) Transpose() *Dense {
	out := NewDense(d.ColsN, d.RowsN)
	for i := 0; i < d.RowsN; i++ {
		row := d.Row(i)
		for j, v := range row {
			out.Data[j*out.ColsN+i] = v
		}
	}
	return out
}

// String renders small blocks for debugging; large blocks are summarized.
func (d *Dense) String() string {
	if d.RowsN*d.ColsN > 64 {
		return fmt.Sprintf("Dense{%dx%d, nnz=%d}", d.RowsN, d.ColsN, d.NNZ())
	}
	s := fmt.Sprintf("Dense{%dx%d}[", d.RowsN, d.ColsN)
	for i := 0; i < d.RowsN; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < d.ColsN; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%g", d.At(i, j))
		}
	}
	return s + "]"
}

var _ Block = (*Dense)(nil)
