package matrix

import (
	"math"
	"math/rand"
)

// RandomDense fills a rows×cols dense block with uniform values in [0, 1),
// matching the paper's synthetic dense generator.
func RandomDense(rng *rand.Rand, rows, cols int) *Dense {
	d := NewDense(rows, cols)
	for i := range d.Data {
		d.Data[i] = rng.Float64()
	}
	return d
}

// RandomSparse generates a rows×cols CSR block whose non-zero elements are
// "randomly and uniformly distributed" (paper §6.1) with the given sparsity
// (fraction of non-zeros; 1.0 means fully dense). Each element is non-zero
// independently with probability sparsity, with value uniform in (0, 1].
func RandomSparse(rng *rand.Rand, rows, cols int, sparsity float64) *CSR {
	if sparsity < 0 || sparsity > 1 {
		panic("matrix: RandomSparse: sparsity must be in [0, 1]")
	}
	m := &CSR{RowsN: rows, ColsN: cols, RowPtr: make([]int, rows+1)}
	if sparsity == 0 {
		return m
	}
	for i := 0; i < rows; i++ {
		if sparsity >= 0.5 {
			// Dense-ish rows: per-element Bernoulli scan is cheap enough.
			for j := 0; j < cols; j++ {
				if rng.Float64() < sparsity {
					m.ColIdx = append(m.ColIdx, j)
					m.Val = append(m.Val, 1-rng.Float64())
				}
			}
		} else {
			// Sparse rows: geometric gap sampling keeps generation O(nnz).
			j := nextGap(rng, sparsity)
			for j < cols {
				m.ColIdx = append(m.ColIdx, j)
				m.Val = append(m.Val, 1-rng.Float64())
				j += 1 + nextGap(rng, sparsity)
			}
		}
		m.RowPtr[i+1] = len(m.Val)
	}
	return m
}

// nextGap samples the number of consecutive zeros before the next non-zero
// for a Bernoulli(p) process (a geometric distribution).
func nextGap(rng *rand.Rand, p float64) int {
	// Inverse-CDF sampling: floor(log(u)/log(1-p)).
	u := rng.Float64()
	if u == 0 {
		u = 1e-300
	}
	g := int(math.Log(u) / math.Log(1-p))
	if g < 0 {
		g = 0
	}
	return g
}
