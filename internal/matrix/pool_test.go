package matrix

import (
	"math/rand"
	"testing"
)

func TestGetDenseZeroedAndSized(t *testing.T) {
	for _, dims := range [][2]int{{0, 0}, {1, 1}, {3, 7}, {64, 64}, {100, 33}} {
		d := GetDense(dims[0], dims[1])
		if r, c := d.Dims(); r != dims[0] || c != dims[1] {
			t.Fatalf("GetDense(%d, %d) dims = %dx%d", dims[0], dims[1], r, c)
		}
		if len(d.Data) != dims[0]*dims[1] {
			t.Fatalf("GetDense(%d, %d) len(Data) = %d", dims[0], dims[1], len(d.Data))
		}
		for i, v := range d.Data {
			if v != 0 {
				t.Fatalf("GetDense(%d, %d) element %d = %g, want 0", dims[0], dims[1], i, v)
			}
		}
		PutDense(d)
	}
}

func TestPoolRecyclesAndRezeroes(t *testing.T) {
	// Dirty a pooled block, release it, and check the next Get of the same
	// size class comes back zeroed even if it reuses the array.
	d := GetDense(64, 64)
	for i := range d.Data {
		d.Data[i] = float64(i + 1)
	}
	PutDense(d)
	if d.Data != nil {
		t.Fatal("PutDense must nil the released Data")
	}
	e := GetDense(60, 60) // same 4096-element class, smaller shape
	for i, v := range e.Data {
		if v != 0 {
			t.Fatalf("recycled block not zeroed at %d: %g", i, v)
		}
	}
	PutDense(e)
}

func TestPutDenseForeignAndDoubleReleaseAreNoOps(t *testing.T) {
	d := NewDense(32, 32)
	d.Data[0] = 42
	PutDense(d) // non-pooled: must not be recycled or nilled
	if d.Data == nil || d.Data[0] != 42 {
		t.Fatal("PutDense mutated a non-pooled block")
	}
	p := GetDense(32, 32)
	PutDense(p)
	PutDense(p) // second release is a no-op
	PutDense(nil)
}

func TestPoolStatsCountReuse(t *testing.T) {
	before := DensePoolStats()
	d := GetDense(128, 128)
	PutDense(d)
	e := GetDense(128, 128)
	PutDense(e)
	after := DensePoolStats()
	if after.Gets-before.Gets < 2 || after.Puts-before.Puts < 2 {
		t.Fatalf("pool stats did not advance: before=%+v after=%+v", before, after)
	}
}

func TestMulAddAccumulatorIsPoolOrigin(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	a := RandomDense(rng, 20, 20)
	b := RandomDense(rng, 20, 20)
	acc := MulAdd(nil, a, b)
	if !acc.fromPool {
		t.Fatal("MulAdd(nil, ...) accumulator should come from the pool")
	}
	// A copy must not inherit the pool tag: releasing it is a no-op.
	cp := acc.Clone()
	if cp.fromPool {
		t.Fatal("Clone must not inherit pool origin")
	}
	PutDense(acc)
	if acc.Data != nil {
		t.Fatal("pool-origin accumulator not released")
	}
}
