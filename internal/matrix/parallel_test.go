package matrix

import (
	"math/rand"
	"testing"
)

// forceParallel drops the fan-out gates so even tiny inputs take the
// parallel path, and restores everything at cleanup. Tests in this file
// never run in parallel with each other (no t.Parallel), so mutating the
// package gates is safe.
func forceParallel(t *testing.T) {
	t.Helper()
	oldPar, oldSparse := parallelThreshold, sparseFlopsThreshold
	parallelThreshold, sparseFlopsThreshold = 1, 1
	t.Cleanup(func() {
		parallelThreshold, sparseFlopsThreshold = oldPar, oldSparse
		SetKernelWorkers(0)
	})
}

// skewedCSR builds an m×k matrix whose first row is fully dense and whose
// remaining rows carry at most one entry — the adversarial shape for
// row-count-balanced splits.
func skewedCSR(rng *rand.Rand, m, k int) *CSR {
	var ri, ci []int
	var v []float64
	for j := 0; j < k; j++ {
		ri = append(ri, 0)
		ci = append(ci, j)
		v = append(v, rng.NormFloat64())
	}
	for i := 1; i < m; i++ {
		if rng.Intn(3) == 0 {
			continue
		}
		ri = append(ri, i)
		ci = append(ci, rng.Intn(k))
		v = append(v, rng.NormFloat64())
	}
	return NewCSR(m, k, ri, ci, v)
}

var equivalenceCases = []struct {
	name    string
	m, k, n int
	build   func(rng *rand.Rand, m, k int) *CSR // sparse operand builder
}{
	{"empty", 0, 0, 0, func(rng *rand.Rand, m, k int) *CSR { return NewCSR(0, 0, nil, nil, nil) }},
	{"no-nonzeros", 6, 8, 5, func(rng *rand.Rand, m, k int) *CSR { return NewCSR(m, k, nil, nil, nil) }},
	{"one-row", 1, 40, 30, func(rng *rand.Rand, m, k int) *CSR { return RandomSparse(rng, m, k, 0.3) }},
	{"skewed-nnz", 33, 48, 24, skewedCSR},
	{"square", 48, 48, 48, func(rng *rand.Rand, m, k int) *CSR { return RandomSparse(rng, m, k, 0.15) }},
	{"ragged-dims", 37, 53, 41, func(rng *rand.Rand, m, k int) *CSR { return RandomSparse(rng, m, k, 0.2) }},
	{"tall-thin", 90, 7, 3, func(rng *rand.Rand, m, k int) *CSR { return RandomSparse(rng, m, k, 0.4) }},
	{"dense-ish", 20, 25, 60, func(rng *rand.Rand, m, k int) *CSR { return RandomSparse(rng, m, k, 0.8) }},
}

var workerWidths = []int{2, 3, 4, 8}

// TestGemmWorkerCountInvariance: the dense kernel must produce bit-for-bit
// identical output for every fan-out width, including widths far above the
// row count.
func TestGemmWorkerCountInvariance(t *testing.T) {
	forceParallel(t)
	for _, tc := range equivalenceCases {
		rng := rand.New(rand.NewSource(101))
		a := RandomDense(rng, tc.m, tc.k)
		b := RandomDense(rng, tc.k, tc.n)
		SetKernelWorkers(1)
		want := NewDense(tc.m, tc.n)
		Gemm(want, a, b)
		for _, w := range workerWidths {
			SetKernelWorkers(w)
			got := NewDense(tc.m, tc.n)
			Gemm(got, a, b)
			if !got.Equal(want) {
				t.Errorf("%s: Gemm differs at %d workers", tc.name, w)
			}
		}
	}
}

func TestCSRMulDenseWorkerCountInvariance(t *testing.T) {
	forceParallel(t)
	for _, tc := range equivalenceCases {
		rng := rand.New(rand.NewSource(102))
		a := tc.build(rng, tc.m, tc.k)
		b := RandomDense(rng, tc.k, tc.n)
		SetKernelWorkers(1)
		want := NewDense(tc.m, tc.n)
		CSRMulDense(want, a, b)
		for _, w := range workerWidths {
			SetKernelWorkers(w)
			got := NewDense(tc.m, tc.n)
			CSRMulDense(got, a, b)
			if !got.Equal(want) {
				t.Errorf("%s: CSRMulDense differs at %d workers", tc.name, w)
			}
		}
	}
}

func TestDenseMulCSCWorkerCountInvariance(t *testing.T) {
	forceParallel(t)
	for _, tc := range equivalenceCases {
		rng := rand.New(rand.NewSource(103))
		a := RandomDense(rng, tc.m, tc.k)
		b := NewCSCFromCSR(tc.build(rng, tc.k, tc.n))
		SetKernelWorkers(1)
		want := NewDense(tc.m, tc.n)
		DenseMulCSC(want, a, b)
		for _, w := range workerWidths {
			SetKernelWorkers(w)
			got := NewDense(tc.m, tc.n)
			DenseMulCSC(got, a, b)
			if !got.Equal(want) {
				t.Errorf("%s: DenseMulCSC differs at %d workers", tc.name, w)
			}
		}
	}
}

// csrEqual compares two CSR matrices structurally: same shape, row
// pointers, column indices and bit-identical values.
func csrEqual(a, b *CSR) bool {
	if a.RowsN != b.RowsN || a.ColsN != b.ColsN || len(a.Val) != len(b.Val) {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for i := range a.ColIdx {
		if a.ColIdx[i] != b.ColIdx[i] || a.Val[i] != b.Val[i] {
			return false
		}
	}
	return true
}

func TestCSRMulCSRWorkerCountInvariance(t *testing.T) {
	forceParallel(t)
	for _, tc := range equivalenceCases {
		rng := rand.New(rand.NewSource(104))
		a := tc.build(rng, tc.m, tc.k)
		b := RandomSparse(rng, tc.k, tc.n, 0.3)
		SetKernelWorkers(1)
		want := CSRMulCSR(a, b)
		for _, w := range workerWidths {
			SetKernelWorkers(w)
			got := CSRMulCSR(a, b)
			if !csrEqual(got, want) {
				t.Errorf("%s: CSRMulCSR differs at %d workers", tc.name, w)
			}
		}
	}
}

// TestParallelKernelsMatchNaive re-validates the parallel paths against the
// O(mnk) reference, not just against the serial kernel.
func TestParallelKernelsMatchNaive(t *testing.T) {
	forceParallel(t)
	SetKernelWorkers(4)
	rng := rand.New(rand.NewSource(105))
	m, k, n := 45, 61, 38
	ad := RandomDense(rng, m, k)
	sp := RandomSparse(rng, m, k, 0.25)
	bd := RandomDense(rng, k, n)
	want := naiveMul(ad, bd)

	c := NewDense(m, n)
	Gemm(c, ad, bd)
	if !c.EqualApprox(want, 1e-9) {
		t.Error("parallel Gemm vs naive mismatch")
	}

	c = NewDense(m, n)
	CSRMulDense(c, sp, bd)
	if !c.EqualApprox(naiveMul(sp.Dense(), bd), 1e-9) {
		t.Error("parallel CSRMulDense vs naive mismatch")
	}

	bcsc := NewCSCFromDense(RandomSparse(rng, k, n, 0.3).Dense())
	c = NewDense(m, n)
	DenseMulCSC(c, ad, bcsc)
	if !c.EqualApprox(naiveMul(ad, bcsc.Dense()), 1e-9) {
		t.Error("parallel DenseMulCSC vs naive mismatch")
	}

	bsp := RandomSparse(rng, k, n, 0.2)
	if !CSRMulCSR(sp, bsp).Dense().EqualApprox(naiveMul(sp.Dense(), bsp.Dense()), 1e-9) {
		t.Error("parallel CSRMulCSR vs naive mismatch")
	}
}

// TestCSRMulCSRHybridSortDenseRows drives result rows past the hybrid-sort
// threshold (dense-ish operands ⇒ >32 columns per result row) and checks
// ordering invariants survive the sort.Ints fallback.
func TestCSRMulCSRHybridSortDenseRows(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	a := RandomSparse(rng, 30, 40, 0.6)
	b := RandomSparse(rng, 40, 80, 0.6)
	got := CSRMulCSR(a, b)
	maxRow := 0
	for i := 0; i < got.RowsN; i++ {
		if w := got.RowPtr[i+1] - got.RowPtr[i]; w > maxRow {
			maxRow = w
		}
		for p := got.RowPtr[i] + 1; p < got.RowPtr[i+1]; p++ {
			if got.ColIdx[p-1] >= got.ColIdx[p] {
				t.Fatalf("row %d columns not strictly increasing", i)
			}
		}
	}
	if maxRow <= hybridSortThreshold {
		t.Fatalf("test did not exercise the sort.Ints fallback (max row %d)", maxRow)
	}
	if !got.Dense().EqualApprox(naiveMul(a.Dense(), b.Dense()), 1e-9) {
		t.Fatal("CSRMulCSR mismatch on dense-ish product")
	}
}

func TestPrefixSplitsBalanceAndCover(t *testing.T) {
	cases := []struct {
		name   string
		prefix []int
		parts  int
	}{
		{"empty", []int{0}, 4},
		{"uniform", []int{0, 10, 20, 30, 40, 50, 60, 70, 80}, 4},
		{"all-in-first", []int{0, 100, 100, 100, 100}, 4},
		{"all-zero", []int{0, 0, 0, 0}, 2},
		{"more-parts-than-rows", []int{0, 5, 9}, 8},
	}
	for _, tc := range cases {
		bounds := prefixSplits(tc.prefix, tc.parts)
		m := len(tc.prefix) - 1
		if bounds[0] != 0 || bounds[len(bounds)-1] != m {
			t.Errorf("%s: bounds %v do not cover [0, %d]", tc.name, bounds, m)
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] < bounds[i-1] {
				t.Errorf("%s: bounds %v not monotone", tc.name, bounds)
			}
		}
	}
}
