package matrix

import (
	"math/rand"
	"testing"
)

// The "seed" variants below are the repo's original serial kernels,
// preserved verbatim as regression baselines so `go test -bench` proves
// (or disproves) each optimization on the machine at hand:
//
//	go test -bench 'Gemm|CSRMulDense|DenseMulCSC|CSRMulCSR' ./internal/matrix
//
// The same comparisons are packaged for trajectory tracking by
// internal/kernbench (distme-bench -kernels → BENCH_kernels.json).

// seedGemm is the seed's i-k-j loop with k-tiling and zero skip, serial.
func seedGemm(c, a, b *Dense) {
	k := a.ColsN
	n := b.ColsN
	for kk := 0; kk < k; kk += gemmBlock {
		kmax := kk + gemmBlock
		if kmax > k {
			kmax = k
		}
		for i := 0; i < a.RowsN; i++ {
			arow := a.Data[i*k : (i+1)*k]
			crow := c.Data[i*n : (i+1)*n]
			for p := kk; p < kmax; p++ {
				av := arow[p]
				if av == 0 {
					continue
				}
				brow := b.Data[p*n : (p+1)*n]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	}
}

// seedCSRMulDense is the seed's serial row loop, one AXPY per entry.
func seedCSRMulDense(c *Dense, a *CSR, b *Dense) {
	m := a.RowsN
	n := b.ColsN
	for i := 0; i < m; i++ {
		crow := c.Data[i*n : (i+1)*n]
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			av := a.Val[p]
			brow := b.Data[a.ColIdx[p]*n : (a.ColIdx[p]+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// seedDenseMulCSC is the seed's column-outer loop with stride-n C writes.
func seedDenseMulCSC(c *Dense, a *Dense, b *CSC) {
	m := a.RowsN
	ka := a.ColsN
	n := b.ColsN
	for j := 0; j < n; j++ {
		for p := b.ColPtr[j]; p < b.ColPtr[j+1]; p++ {
			bk := b.RowIdx[p]
			bv := b.Val[p]
			for i := 0; i < m; i++ {
				c.Data[i*n+j] += a.Data[i*ka+bk] * bv
			}
		}
	}
}

// seedCSRMulCSR is the seed's serial Gustavson with pure insertion sort.
func seedCSRMulCSR(a, b *CSR) *CSR {
	m := a.RowsN
	n := b.ColsN
	out := &CSR{RowsN: m, ColsN: n, RowPtr: make([]int, m+1)}
	acc := make([]float64, n)
	marker := make([]int, n)
	for i := range marker {
		marker[i] = -1
	}
	var cols []int
	for i := 0; i < m; i++ {
		cols = cols[:0]
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			k := a.ColIdx[p]
			av := a.Val[p]
			for q := b.RowPtr[k]; q < b.RowPtr[k+1]; q++ {
				j := b.ColIdx[q]
				if marker[j] != i {
					marker[j] = i
					acc[j] = 0
					cols = append(cols, j)
				}
				acc[j] += av * b.Val[q]
			}
		}
		insertionSortInts(cols)
		for _, j := range cols {
			if acc[j] != 0 {
				out.ColIdx = append(out.ColIdx, j)
				out.Val = append(out.Val, acc[j])
			}
		}
		out.RowPtr[i+1] = len(out.Val)
	}
	return out
}

func BenchmarkGemm(b *testing.B) {
	for _, size := range []int{128, 256, 512} {
		rng := rand.New(rand.NewSource(1))
		x := RandomDense(rng, size, size)
		y := RandomDense(rng, size, size)
		c := NewDense(size, size)
		flops := 2 * float64(size) * float64(size) * float64(size)
		b.Run(benchName("seed", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.Zero()
				seedGemm(c, x, y)
			}
			reportGFlops(b, flops)
		})
		b.Run(benchName("current", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.Zero()
				Gemm(c, x, y)
			}
			reportGFlops(b, flops)
		})
	}
}

func BenchmarkCSRMulDense(b *testing.B) {
	// The paper's sparse workloads (GNMF) multiply a very sparse rating
	// block by a thin dense factor: 2048×2048 at 1% × 2048×128.
	rng := rand.New(rand.NewSource(2))
	x := RandomSparse(rng, 2048, 2048, 0.01)
	y := RandomDense(rng, 2048, 128)
	c := NewDense(2048, 128)
	flops := 2 * float64(x.NNZ()) * 128
	b.Run("seed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.Zero()
			seedCSRMulDense(c, x, y)
		}
		reportGFlops(b, flops)
	})
	b.Run("current", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.Zero()
			CSRMulDense(c, x, y)
		}
		reportGFlops(b, flops)
	})
}

// BenchmarkDenseMulCSC is the regression benchmark for the stride-n fix:
// the seed's column-outer loop touches a new C cache line per element; the
// row-blocked form must beat it on any machine with a cache.
func BenchmarkDenseMulCSC(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := RandomDense(rng, 512, 512)
	y := NewCSCFromCSR(RandomSparse(rng, 512, 512, 0.05))
	c := NewDense(512, 512)
	flops := 2 * float64(y.NNZ()) * 512
	b.Run("seed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.Zero()
			seedDenseMulCSC(c, x, y)
		}
		reportGFlops(b, flops)
	})
	b.Run("current", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.Zero()
			DenseMulCSC(c, x, y)
		}
		reportGFlops(b, flops)
	})
}

func BenchmarkCSRMulCSR(b *testing.B) {
	// Dense-ish result rows (~150 columns) are where the hybrid sort pays;
	// PageRank-style hypersparse rows are covered by the "sparse" case.
	rng := rand.New(rand.NewSource(4))
	cases := []struct {
		name     string
		da, db   float64
		m, k, n  int
	}{
		{"sparse", 0.002, 0.002, 2048, 2048, 2048},
		{"denseRows", 0.05, 0.05, 512, 512, 512},
	}
	for _, tc := range cases {
		x := RandomSparse(rng, tc.m, tc.k, tc.da)
		y := RandomSparse(rng, tc.k, tc.n, tc.db)
		b.Run(tc.name+"/seed", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				seedCSRMulCSR(x, y)
			}
		})
		b.Run(tc.name+"/current", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				CSRMulCSR(x, y)
			}
		})
	}
}

func benchName(variant string, size int) string {
	return variant + "/" + itoa(size)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func reportGFlops(b *testing.B, flopsPerOp float64) {
	b.Helper()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(flopsPerOp*float64(b.N)/sec/1e9, "GFLOPS")
	}
}
