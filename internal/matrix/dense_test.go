package matrix

import (
	"math/rand"
	"testing"
)

func TestNewDenseZeroed(t *testing.T) {
	d := NewDense(3, 4)
	r, c := d.Dims()
	if r != 3 || c != 4 {
		t.Fatalf("Dims() = %d, %d, want 3, 4", r, c)
	}
	if d.NNZ() != 0 {
		t.Fatalf("new dense has %d non-zeros, want 0", d.NNZ())
	}
	if d.SizeBytes() != 3*4*8 {
		t.Fatalf("SizeBytes() = %d, want %d", d.SizeBytes(), 3*4*8)
	}
}

func TestDenseSetAt(t *testing.T) {
	d := NewDense(2, 3)
	d.Set(1, 2, 42)
	if got := d.At(1, 2); got != 42 {
		t.Fatalf("At(1,2) = %g, want 42", got)
	}
	if got := d.At(0, 0); got != 0 {
		t.Fatalf("At(0,0) = %g, want 0", got)
	}
	if d.NNZ() != 1 {
		t.Fatalf("NNZ() = %d, want 1", d.NNZ())
	}
}

func TestDenseOutOfRangePanics(t *testing.T) {
	d := NewDense(2, 2)
	for _, tc := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d,%d) did not panic", tc[0], tc[1])
				}
			}()
			d.At(tc[0], tc[1])
		}()
	}
}

func TestNewDenseDataLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDenseData with wrong length did not panic")
		}
	}()
	NewDenseData(2, 2, []float64{1, 2, 3})
}

func TestDenseTranspose(t *testing.T) {
	d := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := d.Transpose()
	r, c := tr.Dims()
	if r != 3 || c != 2 {
		t.Fatalf("transpose dims = %dx%d, want 3x2", r, c)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if d.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestDenseTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := RandomDense(rng, 7, 5)
	if !d.Transpose().Transpose().Equal(d) {
		t.Fatal("transpose twice is not identity")
	}
}

func TestDenseCloneIndependent(t *testing.T) {
	d := NewDenseData(1, 2, []float64{1, 2})
	cl := d.Clone()
	cl.Set(0, 0, 99)
	if d.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestDenseEqualApprox(t *testing.T) {
	a := NewDenseData(1, 2, []float64{1, 2})
	b := NewDenseData(1, 2, []float64{1.0000001, 2})
	if a.Equal(b) {
		t.Fatal("Equal should be exact")
	}
	if !a.EqualApprox(b, 1e-5) {
		t.Fatal("EqualApprox(1e-5) should accept tiny diff")
	}
	if a.EqualApprox(b, 1e-9) {
		t.Fatal("EqualApprox(1e-9) should reject the diff")
	}
	c := NewDense(2, 1)
	if a.EqualApprox(c, 1) {
		t.Fatal("EqualApprox must reject shape mismatch")
	}
}

func TestDenseFrobeniusNorm(t *testing.T) {
	d := NewDenseData(1, 2, []float64{3, 4})
	if got := d.FrobeniusNorm(); got != 5 {
		t.Fatalf("FrobeniusNorm = %g, want 5", got)
	}
}

func TestDenseRow(t *testing.T) {
	d := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	row := d.Row(1)
	if row[0] != 3 || row[1] != 4 {
		t.Fatalf("Row(1) = %v, want [3 4]", row)
	}
	row[0] = 9 // subslice aliases the matrix
	if d.At(1, 0) != 9 {
		t.Fatal("Row must alias matrix storage")
	}
}

func TestFormatString(t *testing.T) {
	if FormatDense.String() != "dense" || FormatCSR.String() != "csr" || FormatCSC.String() != "csc" {
		t.Fatal("format names wrong")
	}
	if Format(99).String() == "" {
		t.Fatal("unknown format should still render")
	}
}
