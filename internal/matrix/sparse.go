package matrix

import (
	"fmt"
	"sort"
)

// CSR is a compressed-sparse-row block: for row i the stored entries are
// ColIdx[RowPtr[i]:RowPtr[i+1]] / Val[RowPtr[i]:RowPtr[i+1]], column indices
// strictly increasing within a row. This is the format the paper feeds to
// cusparseDcsrmm for sparse local multiplication.
type CSR struct {
	RowsN, ColsN int
	RowPtr       []int
	ColIdx       []int
	Val          []float64
}

// NewCSR builds a CSR block from triplet data. Entries may arrive in any
// order; duplicates are summed. Indices out of range panic.
func NewCSR(rows, cols int, rowIdx, colIdx []int, val []float64) *CSR {
	if len(rowIdx) != len(colIdx) || len(rowIdx) != len(val) {
		panic("matrix: NewCSR: triplet slices must have equal length")
	}
	type trip struct {
		r, c int
		v    float64
	}
	ts := make([]trip, len(val))
	for i := range val {
		r, c := rowIdx[i], colIdx[i]
		if r < 0 || r >= rows || c < 0 || c >= cols {
			panic(fmt.Sprintf("matrix: NewCSR: entry (%d, %d) out of range %dx%d", r, c, rows, cols))
		}
		ts[i] = trip{r, c, val[i]}
	}
	sort.Slice(ts, func(a, b int) bool {
		if ts[a].r != ts[b].r {
			return ts[a].r < ts[b].r
		}
		return ts[a].c < ts[b].c
	})
	m := &CSR{RowsN: rows, ColsN: cols, RowPtr: make([]int, rows+1)}
	for i := 0; i < len(ts); {
		j := i + 1
		sum := ts[i].v
		for j < len(ts) && ts[j].r == ts[i].r && ts[j].c == ts[i].c {
			sum += ts[j].v
			j++
		}
		if sum != 0 {
			m.ColIdx = append(m.ColIdx, ts[i].c)
			m.Val = append(m.Val, sum)
			m.RowPtr[ts[i].r+1]++
		}
		i = j
	}
	for i := 0; i < rows; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	return m
}

// NewCSRFromDense converts a dense block, dropping zeros.
func NewCSRFromDense(d *Dense) *CSR {
	m := &CSR{RowsN: d.RowsN, ColsN: d.ColsN, RowPtr: make([]int, d.RowsN+1)}
	for i := 0; i < d.RowsN; i++ {
		for j, v := range d.Row(i) {
			if v != 0 {
				m.ColIdx = append(m.ColIdx, j)
				m.Val = append(m.Val, v)
			}
		}
		m.RowPtr[i+1] = len(m.Val)
	}
	return m
}

// Dims returns the dimensions.
func (m *CSR) Dims() (int, int) { return m.RowsN, m.ColsN }

// NNZ returns the stored-entry count.
func (m *CSR) NNZ() int { return len(m.Val) }

// SizeBytes accounts 8 bytes per value plus 8 bytes per column index plus the
// row-pointer array, mirroring the in-memory 64-bit CSR payload. The wire
// encoding is usually smaller (32-bit or delta-varint indices); use
// codec.EncodedBytes when pricing network traffic.
func (m *CSR) SizeBytes() int64 {
	return int64(len(m.Val))*elemBytes + int64(len(m.ColIdx))*8 + int64(len(m.RowPtr))*8
}

// At returns element (i, j) with a binary search within the row.
func (m *CSR) At(i, j int) float64 {
	if i < 0 || i >= m.RowsN || j < 0 || j >= m.ColsN {
		panic(fmt.Sprintf("matrix: index (%d, %d) out of range %dx%d", i, j, m.RowsN, m.ColsN))
	}
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	k := lo + sort.SearchInts(m.ColIdx[lo:hi], j)
	if k < hi && m.ColIdx[k] == j {
		return m.Val[k]
	}
	return 0
}

// Dense materializes the block.
func (m *CSR) Dense() *Dense {
	d := NewDense(m.RowsN, m.ColsN)
	for i := 0; i < m.RowsN; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			d.Data[i*m.ColsN+m.ColIdx[k]] = m.Val[k]
		}
	}
	return d
}

// Format reports FormatCSR.
func (m *CSR) Format() Format { return FormatCSR }

// Transpose returns the CSC view of the same data reinterpreted as the
// transposed CSR matrix, as a fresh CSR block.
func (m *CSR) Transpose() *CSR {
	// Count entries per column of m = per row of the transpose.
	rp := make([]int, m.ColsN+1)
	for _, c := range m.ColIdx {
		rp[c+1]++
	}
	for i := 0; i < m.ColsN; i++ {
		rp[i+1] += rp[i]
	}
	col := make([]int, len(m.ColIdx))
	val := make([]float64, len(m.Val))
	next := make([]int, m.ColsN)
	copy(next, rp[:m.ColsN])
	for i := 0; i < m.RowsN; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			c := m.ColIdx[k]
			p := next[c]
			col[p] = i
			val[p] = m.Val[k]
			next[c] = p + 1
		}
	}
	return &CSR{RowsN: m.ColsN, ColsN: m.RowsN, RowPtr: rp, ColIdx: col, Val: val}
}

var _ Block = (*CSR)(nil)

// CSC is a compressed-sparse-column block, the column-major dual of CSR.
type CSC struct {
	RowsN, ColsN int
	ColPtr       []int
	RowIdx       []int
	Val          []float64
}

// NewCSCFromDense converts a dense block, dropping zeros.
func NewCSCFromDense(d *Dense) *CSC {
	m := &CSC{RowsN: d.RowsN, ColsN: d.ColsN, ColPtr: make([]int, d.ColsN+1)}
	for j := 0; j < d.ColsN; j++ {
		for i := 0; i < d.RowsN; i++ {
			if v := d.Data[i*d.ColsN+j]; v != 0 {
				m.RowIdx = append(m.RowIdx, i)
				m.Val = append(m.Val, v)
			}
		}
		m.ColPtr[j+1] = len(m.Val)
	}
	return m
}

// NewCSCFromCSR converts between the sparse formats without densifying.
func NewCSCFromCSR(s *CSR) *CSC {
	t := s.Transpose() // CSR of the transpose == CSC of the original, reinterpreted
	return &CSC{RowsN: s.RowsN, ColsN: s.ColsN, ColPtr: t.RowPtr, RowIdx: t.ColIdx, Val: t.Val}
}

// Dims returns the dimensions.
func (m *CSC) Dims() (int, int) { return m.RowsN, m.ColsN }

// NNZ returns the stored-entry count.
func (m *CSC) NNZ() int { return len(m.Val) }

// SizeBytes mirrors the CSR accounting (in-memory, not wire — see
// codec.EncodedBytes for the latter).
func (m *CSC) SizeBytes() int64 {
	return int64(len(m.Val))*elemBytes + int64(len(m.RowIdx))*8 + int64(len(m.ColPtr))*8
}

// At returns element (i, j) with a binary search within the column.
func (m *CSC) At(i, j int) float64 {
	if i < 0 || i >= m.RowsN || j < 0 || j >= m.ColsN {
		panic(fmt.Sprintf("matrix: index (%d, %d) out of range %dx%d", i, j, m.RowsN, m.ColsN))
	}
	lo, hi := m.ColPtr[j], m.ColPtr[j+1]
	k := lo + sort.SearchInts(m.RowIdx[lo:hi], i)
	if k < hi && m.RowIdx[k] == i {
		return m.Val[k]
	}
	return 0
}

// Dense materializes the block.
func (m *CSC) Dense() *Dense {
	d := NewDense(m.RowsN, m.ColsN)
	for j := 0; j < m.ColsN; j++ {
		for k := m.ColPtr[j]; k < m.ColPtr[j+1]; k++ {
			d.Data[m.RowIdx[k]*m.ColsN+j] = m.Val[k]
		}
	}
	return d
}

// Format reports FormatCSC.
func (m *CSC) Format() Format { return FormatCSC }

var _ Block = (*CSC)(nil)

// Sparsity returns nnz / (rows*cols) for any block; empty blocks report 0.
func Sparsity(b Block) float64 {
	r, c := b.Dims()
	if r == 0 || c == 0 {
		return 0
	}
	return float64(b.NNZ()) / (float64(r) * float64(c))
}
