package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewCSRFromTriplets(t *testing.T) {
	m := NewCSR(3, 3,
		[]int{2, 0, 0, 1},
		[]int{1, 2, 0, 1},
		[]float64{5, 3, 1, 4})
	want := NewDenseData(3, 3, []float64{
		1, 0, 3,
		0, 4, 0,
		0, 5, 0,
	})
	if !m.Dense().Equal(want) {
		t.Fatalf("CSR from triplets = %v, want %v", m.Dense(), want)
	}
	if m.NNZ() != 4 {
		t.Fatalf("NNZ = %d, want 4", m.NNZ())
	}
}

func TestNewCSRDuplicatesSummed(t *testing.T) {
	m := NewCSR(2, 2, []int{0, 0, 1}, []int{1, 1, 0}, []float64{2, 3, -1})
	if got := m.At(0, 1); got != 5 {
		t.Fatalf("duplicate sum = %g, want 5", got)
	}
	if m.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", m.NNZ())
	}
}

func TestNewCSRCancellationDropped(t *testing.T) {
	m := NewCSR(1, 1, []int{0, 0}, []int{0, 0}, []float64{2, -2})
	if m.NNZ() != 0 {
		t.Fatalf("cancelled entry still stored: nnz=%d", m.NNZ())
	}
}

func TestNewCSROutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range triplet did not panic")
		}
	}()
	NewCSR(2, 2, []int{2}, []int{0}, []float64{1})
}

func TestCSRDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := RandomSparse(rng, 10, 8, 0.3).Dense()
	back := NewCSRFromDense(d).Dense()
	if !d.Equal(back) {
		t.Fatal("dense→CSR→dense is not identity")
	}
}

func TestCSCDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := RandomSparse(rng, 9, 11, 0.25).Dense()
	back := NewCSCFromDense(d).Dense()
	if !d.Equal(back) {
		t.Fatal("dense→CSC→dense is not identity")
	}
}

func TestCSCFromCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := RandomSparse(rng, 6, 7, 0.4)
	c := NewCSCFromCSR(s)
	if !s.Dense().Equal(c.Dense()) {
		t.Fatal("CSR→CSC changed values")
	}
	if s.NNZ() != c.NNZ() {
		t.Fatalf("nnz changed: %d vs %d", s.NNZ(), c.NNZ())
	}
}

func TestCSRTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(12)
		cols := 1 + rng.Intn(12)
		s := RandomSparse(rng, rows, cols, 0.35)
		return s.Transpose().Dense().Equal(s.Dense().Transpose())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCSRTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := RandomSparse(rng, 1+rng.Intn(10), 1+rng.Intn(10), 0.5)
		return s.Transpose().Transpose().Dense().Equal(s.Dense())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCSRAt(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := RandomSparse(rng, 8, 8, 0.3)
	d := s.Dense()
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if s.At(i, j) != d.At(i, j) {
				t.Fatalf("CSR At(%d,%d) = %g, dense %g", i, j, s.At(i, j), d.At(i, j))
			}
		}
	}
}

func TestCSCAt(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := RandomSparse(rng, 8, 8, 0.3).Dense()
	s := NewCSCFromDense(d)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if s.At(i, j) != d.At(i, j) {
				t.Fatalf("CSC At(%d,%d) = %g, dense %g", i, j, s.At(i, j), d.At(i, j))
			}
		}
	}
}

func TestSparsity(t *testing.T) {
	d := NewDense(4, 5)
	d.Set(0, 0, 1)
	d.Set(1, 1, 2)
	if got := Sparsity(d); got != 0.1 {
		t.Fatalf("Sparsity = %g, want 0.1", got)
	}
	if got := Sparsity(NewDense(0, 5)); got != 0 {
		t.Fatalf("Sparsity of empty = %g, want 0", got)
	}
}

func TestRandomSparseStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, sp := range []float64{0.01, 0.1, 0.5, 0.9} {
		m := RandomSparse(rng, 200, 200, sp)
		got := Sparsity(m)
		if got < sp*0.8-0.005 || got > sp*1.2+0.005 {
			t.Errorf("sparsity %g produced %g, outside ±20%%", sp, got)
		}
	}
}

func TestRandomSparseExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	if m := RandomSparse(rng, 10, 10, 0); m.NNZ() != 0 {
		t.Fatal("sparsity 0 must produce empty matrix")
	}
	if m := RandomSparse(rng, 10, 10, 1); m.NNZ() != 100 {
		t.Fatalf("sparsity 1 produced %d non-zeros, want 100", m.NNZ())
	}
}

func TestRandomSparseInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("sparsity > 1 did not panic")
		}
	}()
	RandomSparse(rand.New(rand.NewSource(1)), 2, 2, 1.5)
}

func TestCSRSizeBytesSmallerThanDenseWhenSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := RandomSparse(rng, 100, 100, 0.01)
	if s.SizeBytes() >= s.Dense().SizeBytes() {
		t.Fatalf("CSR at 1%% density not smaller than dense: %d vs %d", s.SizeBytes(), s.Dense().SizeBytes())
	}
}
