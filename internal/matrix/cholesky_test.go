package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// spdMatrix builds a random symmetric positive-definite matrix M·Mᵀ + n·I.
func spdMatrix(rng *rand.Rand, n int) *Dense {
	m := RandomDense(rng, n, n)
	a := NewDense(n, n)
	Gemm(a, m, m.Transpose())
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	return a
}

func TestCholeskyReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(180))
	a := spdMatrix(rng, 8)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// L must be lower-triangular.
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			if l.At(i, j) != 0 {
				t.Fatalf("L[%d,%d] = %g above the diagonal", i, j, l.At(i, j))
			}
		}
	}
	// L·Lᵀ = A.
	rec := NewDense(8, 8)
	Gemm(rec, l, l.Transpose())
	if !rec.EqualApprox(a, 1e-9) {
		t.Fatal("L·Lᵀ does not reconstruct A")
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, −1
	if _, err := Cholesky(a); err == nil {
		t.Fatal("indefinite matrix accepted")
	}
	if _, err := Cholesky(NewDense(2, 3)); err == nil {
		t.Fatal("non-square accepted")
	}
}

func TestSolveCholeskyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		cols := 1 + rng.Intn(4)
		a := spdMatrix(rng, n)
		want := RandomDense(rng, n, cols)
		// B = A·X for a known X; the solve must recover X.
		b := NewDense(n, cols)
		Gemm(b, a, want)
		got, err := SolveSPD(a, b)
		if err != nil {
			return false
		}
		return got.EqualApprox(want, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveCholeskyShapeChecks(t *testing.T) {
	rng := rand.New(rand.NewSource(181))
	a := spdMatrix(rng, 4)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SolveCholesky(l, NewDense(5, 1)); err == nil {
		t.Fatal("mismatched B accepted")
	}
	if _, err := SolveCholesky(NewDense(3, 4), NewDense(3, 1)); err == nil {
		t.Fatal("non-square factor accepted")
	}
}
