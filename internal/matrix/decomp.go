package matrix

import (
	"fmt"
	"math"
)

// LU computes the LU factorization with partial pivoting P·A = L·U of a
// square matrix — another of the paper's motivating applications (§1). It
// returns L (unit lower triangular), U (upper triangular), the permutation
// as a row-index slice (perm[i] is the source row of row i), and an error
// for singular inputs.
func LU(a *Dense) (l, u *Dense, perm []int, err error) {
	n, m := a.Dims()
	if n != m {
		return nil, nil, nil, fmt.Errorf("matrix: LU: matrix is %dx%d, not square", n, m)
	}
	u = a.Clone()
	l = NewDense(n, n)
	perm = make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		// Partial pivot: the largest magnitude in the column at or below
		// the diagonal.
		pivot := col
		best := math.Abs(u.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(u.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best == 0 {
			return nil, nil, nil, fmt.Errorf("matrix: LU: singular at column %d", col)
		}
		if pivot != col {
			swapRows(u, pivot, col)
			swapRowsUpTo(l, pivot, col, col)
			perm[pivot], perm[col] = perm[col], perm[pivot]
		}
		l.Set(col, col, 1)
		inv := 1 / u.At(col, col)
		for r := col + 1; r < n; r++ {
			f := u.At(r, col) * inv
			l.Set(r, col, f)
			// The eliminated entry is exactly zero by construction; set it
			// directly rather than leaving float residue below the diagonal.
			u.Set(r, col, 0)
			if f == 0 {
				continue
			}
			for c := col + 1; c < n; c++ {
				u.Set(r, c, u.At(r, c)-f*u.At(col, c))
			}
		}
	}
	return l, u, perm, nil
}

func swapRows(d *Dense, a, b int) {
	ra, rb := d.Row(a), d.Row(b)
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}

func swapRowsUpTo(d *Dense, a, b, upTo int) {
	ra, rb := d.Row(a), d.Row(b)
	for i := 0; i < upTo; i++ {
		ra[i], rb[i] = rb[i], ra[i]
	}
}

// SolveLU solves A·x = b given the LU factorization of A.
func SolveLU(l, u *Dense, perm []int, b *Dense) (*Dense, error) {
	n, _ := l.Dims()
	br, bc := b.Dims()
	if br != n {
		return nil, fmt.Errorf("matrix: SolveLU: B has %d rows, want %d", br, n)
	}
	x := NewDense(n, bc)
	y := make([]float64, n)
	for c := 0; c < bc; c++ {
		// Forward: L·y = P·b.
		for i := 0; i < n; i++ {
			sum := b.At(perm[i], c)
			for k := 0; k < i; k++ {
				sum -= l.At(i, k) * y[k]
			}
			y[i] = sum
		}
		// Backward: U·x = y.
		for i := n - 1; i >= 0; i-- {
			sum := y[i]
			for k := i + 1; k < n; k++ {
				sum -= u.At(i, k) * x.At(k, c)
			}
			x.Set(i, c, sum/u.At(i, i))
		}
	}
	return x, nil
}

// JacobiEigen diagonalizes a symmetric matrix with cyclic Jacobi rotations,
// returning eigenvalues (descending) and the matching orthonormal
// eigenvectors as columns. It is the small-matrix eigensolver behind the
// randomized SVD.
func JacobiEigen(a *Dense, maxSweeps int) (vals []float64, vecs *Dense, err error) {
	n, m := a.Dims()
	if n != m {
		return nil, nil, fmt.Errorf("matrix: JacobiEigen: matrix is %dx%d, not square", n, m)
	}
	if maxSweeps <= 0 {
		maxSweeps = 64
	}
	s := a.Clone()
	v := NewDense(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	const tol = 1e-14
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += s.At(i, j) * s.At(i, j)
			}
		}
		if off < tol {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				apq := s.At(p, q)
				if math.Abs(apq) < tol/float64(n*n) {
					continue
				}
				app, aqq := s.At(p, p), s.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				sn := t * c
				rotate(s, v, p, q, c, sn)
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = s.At(i, i)
	}
	// Sort descending, permuting eigenvector columns along.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && vals[order[j-1]] < vals[order[j]]; j-- {
			order[j-1], order[j] = order[j], order[j-1]
		}
	}
	sorted := make([]float64, n)
	vecs = NewDense(n, n)
	for out, idx := range order {
		sorted[out] = vals[idx]
		for r := 0; r < n; r++ {
			vecs.Set(r, out, v.At(r, idx))
		}
	}
	return sorted, vecs, nil
}

// rotate applies the Jacobi rotation (p, q, c, s) to S (two-sided) and
// accumulates it into V.
func rotate(s, v *Dense, p, q int, c, sn float64) {
	n, _ := s.Dims()
	for k := 0; k < n; k++ {
		skp, skq := s.At(k, p), s.At(k, q)
		s.Set(k, p, c*skp-sn*skq)
		s.Set(k, q, sn*skp+c*skq)
	}
	for k := 0; k < n; k++ {
		spk, sqk := s.At(p, k), s.At(q, k)
		s.Set(p, k, c*spk-sn*sqk)
		s.Set(q, k, sn*spk+c*sqk)
	}
	for k := 0; k < n; k++ {
		vkp, vkq := v.At(k, p), v.At(k, q)
		v.Set(k, p, c*vkp-sn*vkq)
		v.Set(k, q, sn*vkp+c*vkq)
	}
}

// GramSchmidtQR orthonormalizes the columns of A (modified Gram–Schmidt),
// returning Q with orthonormal columns (rank-deficient columns are dropped).
func GramSchmidtQR(a *Dense) *Dense {
	n, m := a.Dims()
	cols := make([][]float64, 0, m)
	for j := 0; j < m; j++ {
		v := make([]float64, n)
		for i := 0; i < n; i++ {
			v[i] = a.At(i, j)
		}
		for _, u := range cols {
			var dot float64
			for i := range v {
				dot += v[i] * u[i]
			}
			for i := range v {
				v[i] -= dot * u[i]
			}
		}
		var norm float64
		for _, x := range v {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm < 1e-12 {
			continue // dependent column
		}
		for i := range v {
			v[i] /= norm
		}
		cols = append(cols, v)
	}
	q := NewDense(n, len(cols))
	for j, u := range cols {
		for i := 0; i < n; i++ {
			q.Set(i, j, u[i])
		}
	}
	return q
}
