package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLUReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(200))
	a := RandomDense(rng, 9, 9)
	l, u, perm, err := LU(a)
	if err != nil {
		t.Fatal(err)
	}
	// L·U must equal P·A.
	lu := NewDense(9, 9)
	Gemm(lu, l, u)
	pa := NewDense(9, 9)
	for i := 0; i < 9; i++ {
		copy(pa.Row(i), a.Row(perm[i]))
	}
	if !lu.EqualApprox(pa, 1e-9) {
		t.Fatal("L·U != P·A")
	}
	// Shape checks: L unit lower, U upper.
	for i := 0; i < 9; i++ {
		if l.At(i, i) != 1 {
			t.Fatalf("L[%d,%d] = %g, want 1", i, i, l.At(i, i))
		}
		for j := i + 1; j < 9; j++ {
			if l.At(i, j) != 0 {
				t.Fatal("L not lower triangular")
			}
			if u.At(j, i) != 0 {
				t.Fatal("U not upper triangular")
			}
		}
	}
}

func TestLUSolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		a := RandomDense(rng, n, n)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)) // diagonally dominant → nonsingular
		}
		want := RandomDense(rng, n, 2)
		b := NewDense(n, 2)
		Gemm(b, a, want)
		l, u, perm, err := LU(a)
		if err != nil {
			return false
		}
		got, err := SolveLU(l, u, perm, b)
		if err != nil {
			return false
		}
		return got.EqualApprox(want, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLURejectsSingular(t *testing.T) {
	if _, _, _, err := LU(NewDense(3, 3)); err == nil {
		t.Fatal("zero matrix accepted")
	}
	if _, _, _, err := LU(NewDense(2, 3)); err == nil {
		t.Fatal("non-square accepted")
	}
}

func TestLUPivotingHandlesZeroDiagonal(t *testing.T) {
	// A matrix that needs pivoting: zero on the first diagonal entry.
	a := NewDenseData(2, 2, []float64{0, 1, 1, 0})
	l, u, perm, err := LU(a)
	if err != nil {
		t.Fatal(err)
	}
	b := NewDenseData(2, 1, []float64{3, 7})
	x, err := SolveLU(l, u, perm, b)
	if err != nil {
		t.Fatal(err)
	}
	// A swaps coordinates: x = (7, 3).
	if math.Abs(x.At(0, 0)-7) > 1e-12 || math.Abs(x.At(1, 0)-3) > 1e-12 {
		t.Fatalf("x = (%g, %g), want (7, 3)", x.At(0, 0), x.At(1, 0))
	}
}

func TestJacobiEigenDiagonalizes(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	a := spdMatrix(rng, 6)
	vals, vecs, err := JacobiEigen(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Descending eigenvalues.
	for i := 1; i < len(vals); i++ {
		if vals[i] > vals[i-1]+1e-12 {
			t.Fatal("eigenvalues not descending")
		}
	}
	// A·v = λ·v for each pair.
	for j := 0; j < 6; j++ {
		for i := 0; i < 6; i++ {
			var av float64
			for k := 0; k < 6; k++ {
				av += a.At(i, k) * vecs.At(k, j)
			}
			if math.Abs(av-vals[j]*vecs.At(i, j)) > 1e-8 {
				t.Fatalf("A·v != λ·v at (%d, %d)", i, j)
			}
		}
	}
	// Eigenvectors orthonormal.
	for p := 0; p < 6; p++ {
		for q := 0; q < 6; q++ {
			var dot float64
			for k := 0; k < 6; k++ {
				dot += vecs.At(k, p) * vecs.At(k, q)
			}
			want := 0.0
			if p == q {
				want = 1
			}
			if math.Abs(dot-want) > 1e-9 {
				t.Fatalf("eigenvectors not orthonormal at (%d, %d): %g", p, q, dot)
			}
		}
	}
}

func TestJacobiEigenTraceInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		a := spdMatrix(rng, n)
		var trace float64
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
		}
		vals, _, err := JacobiEigen(a, 0)
		if err != nil {
			return false
		}
		var sum float64
		for _, v := range vals {
			sum += v
		}
		return math.Abs(sum-trace) < 1e-8*math.Abs(trace)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGramSchmidtQROrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	a := RandomDense(rng, 12, 5)
	q := GramSchmidtQR(a)
	r, c := q.Dims()
	if r != 12 || c != 5 {
		t.Fatalf("Q is %dx%d", r, c)
	}
	for p := 0; p < c; p++ {
		for s := 0; s < c; s++ {
			var dot float64
			for i := 0; i < r; i++ {
				dot += q.At(i, p) * q.At(i, s)
			}
			want := 0.0
			if p == s {
				want = 1
			}
			if math.Abs(dot-want) > 1e-9 {
				t.Fatalf("QᵀQ[%d,%d] = %g", p, s, dot)
			}
		}
	}
}

func TestGramSchmidtQRDropsDependentColumns(t *testing.T) {
	a := NewDenseData(3, 2, []float64{1, 2, 1, 2, 1, 2}) // col2 = 2·col1
	q := GramSchmidtQR(a)
	if _, c := q.Dims(); c != 1 {
		t.Fatalf("rank-1 input kept %d columns", c)
	}
}
