package matrix

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// The dense-buffer pool recycles the float64 backing arrays of short-lived
// dense accumulators — the MulAdd accumulators and aggregation temporaries
// of the many-cuboid multiply path, which otherwise allocate one
// block-sized array per (i,j,k-range) and leave all of them to the GC.
// Arrays are pooled in power-of-two size classes so a buffer released by
// one block shape can serve any equal-or-smaller shape.
//
// Ownership protocol: GetDense hands out a zeroed block tagged as
// pool-origin; PutDense recycles the array only for pool-origin blocks and
// is a no-op (and therefore always safe) on blocks allocated any other
// way. A released block's Data is nilled so accidental use-after-release
// fails fast on a bounds check instead of silently aliasing a reused array.

const (
	// poolMinBits: arrays below 2^8 elements (2 KiB) are cheaper to
	// allocate than to round-trip through the pool.
	poolMinBits = 8
	// poolMaxBits: arrays above 2^26 elements (512 MiB) are too big to keep
	// cached; let the GC have them.
	poolMaxBits = 26
)

var densePools [poolMaxBits + 1]sync.Pool

// PoolStats counts dense-pool traffic; Hits/Gets is the reuse rate.
type PoolStats struct {
	Gets, Hits, Puts int64
}

var poolGets, poolHits, poolPuts atomic.Int64

// DensePoolStats returns cumulative pool counters (process lifetime).
func DensePoolStats() PoolStats {
	return PoolStats{Gets: poolGets.Load(), Hits: poolHits.Load(), Puts: poolPuts.Load()}
}

// GetDense returns a zeroed rows×cols dense block whose backing array may be
// recycled. Release it with PutDense once it provably has no more readers;
// blocks that escape into long-lived results are simply never released.
func GetDense(rows, cols int) *Dense {
	d := &Dense{RowsN: rows, ColsN: cols, Data: getScratch(rows * cols)}
	for i := range d.Data {
		d.Data[i] = 0
	}
	d.fromPool = true
	return d
}

// PutDense releases a block obtained from GetDense back to the pool. The
// caller must guarantee no other references to the block or its Data
// survive. Calling it on a non-pooled or already-released block is a no-op.
func PutDense(d *Dense) {
	if d == nil || !d.fromPool {
		return
	}
	d.fromPool = false
	putScratch(d.Data)
	d.Data = nil
}

// getScratch returns a float64 buffer of the given length with arbitrary
// contents — callers that need zeros must clear it (GetDense does).
func getScratch(n int) []float64 {
	if n <= 0 {
		return nil
	}
	class := bits.Len(uint(n - 1)) // ceil(log2(n))
	if class < poolMinBits || class > poolMaxBits {
		return make([]float64, n)
	}
	poolGets.Add(1)
	if v := densePools[class].Get(); v != nil {
		poolHits.Add(1)
		s := *(v.(*[]float64))
		return s[:n]
	}
	return make([]float64, n, 1<<class)
}

// putScratch recycles a buffer previously handed out by getScratch. Foreign
// buffers are accepted too: they are filed under the largest power-of-two
// class their capacity covers.
func putScratch(s []float64) {
	c := cap(s)
	if c == 0 {
		return
	}
	class := bits.Len(uint(c)) - 1 // floor(log2(c)): 1<<class <= cap
	if class < poolMinBits || class > poolMaxBits {
		return
	}
	poolPuts.Add(1)
	boxed := s[:0:1<<class]
	densePools[class].Put(&boxed)
}
