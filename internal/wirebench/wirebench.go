// Package wirebench packages the wire-format regression benchmarks behind
// a library API so `distme-bench -wire` can emit a machine-readable
// artifact (BENCH_wire.json). Each entry pits gob — the repo's original
// RPC encoding, exercised through a persistent encoder/decoder pair the
// way a long-lived connection would — against internal/codec's binary
// framing on the same blocks, and every decoded block is re-verified
// bit-for-bit against the original before any number is reported: a
// decode mismatch fails the run, which is what the CI smoke step keys on.
//
// A second section measures what the content-addressed block cache buys
// end-to-end: one replicated cuboid multiply against a loopback worker,
// cold (cache disabled) versus warm, in real socket bytes.
package wirebench

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"runtime"
	"testing"
	"time"

	"distme/internal/bmat"
	"distme/internal/codec"
	"distme/internal/core"
	"distme/internal/distnet"
	"distme/internal/matrix"
	"distme/internal/obs"
)

// CodecResult is one gob-vs-codec comparison on a single block shape. The
// speedup is throughput-based over the full encode+decode round trip.
type CodecResult struct {
	Name       string  `json:"name"`
	GobBytes   int     `json:"gob_bytes"`
	CodecBytes int     `json:"codec_bytes"`
	GobEncUs   float64 `json:"gob_encode_us_per_op"`
	CodecEncUs float64 `json:"codec_encode_us_per_op"`
	GobDecUs   float64 `json:"gob_decode_us_per_op"`
	CodecDecUs float64 `json:"codec_decode_us_per_op"`
	EncSpeedup float64 `json:"encode_speedup"`
	DecSpeedup float64 `json:"decode_speedup"`
	RoundTripX float64 `json:"roundtrip_speedup"`
}

// CacheResult is the cold-vs-warm socket comparison for one replicated
// multiply: identical plan, identical product, different bytes.
type CacheResult struct {
	Params        string `json:"params"`
	ColdSentBytes int64  `json:"cold_sent_bytes"`
	WarmSentBytes int64  `json:"warm_sent_bytes"`
	CacheRefsSent int64  `json:"cache_refs_sent"`
	BytesSaved    int64  `json:"cache_bytes_saved"`
}

// Report is the full wire benchmark run.
type Report struct {
	Date       string        `json:"date"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	NumCPU     int           `json:"num_cpu"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Codec      []CodecResult `json:"codec"`
	Cache      CacheResult   `json:"cache"`
}

// benchBlocks is the shape menagerie: the dense entries are the ones the
// ≥3× acceptance bar applies to; the sparse entries keep the compact
// forms honest.
func benchBlocks() []struct {
	name string
	blk  matrix.Block
} {
	rng := rand.New(rand.NewSource(8080))
	dense := func(r, c int) *matrix.Dense {
		d := matrix.NewDense(r, c)
		for i := range d.Data {
			d.Data[i] = rng.NormFloat64()
		}
		return d
	}
	sparse := func(r, c int, density float64) *matrix.Dense {
		d := matrix.NewDense(r, c)
		for i := range d.Data {
			if rng.Float64() < density {
				d.Data[i] = rng.NormFloat64()
			}
		}
		return d
	}
	return []struct {
		name string
		blk  matrix.Block
	}{
		{"dense-64x64", dense(64, 64)},
		{"dense-256x256", dense(256, 256)},
		{"csr-256x256-5pct", matrix.NewCSRFromDense(sparse(256, 256, 0.05))},
		{"csc-256x256-20pct", matrix.NewCSCFromDense(sparse(256, 256, 0.20))},
	}
}

func init() {
	// The gob side needs the concrete block types registered, exactly as
	// the old wire protocol did before the binary codec replaced it.
	gob.Register(&matrix.Dense{})
	gob.Register(&matrix.CSR{})
	gob.Register(&matrix.CSC{})
}

// replayReader serves the descriptor-bearing first gob message once (the
// caller primes buf with it), then replays the steady-state message
// forever — a synthetic long-lived connection, so the decoder is
// benchmarked without per-message descriptor costs.
type replayReader struct {
	steady []byte
	buf    bytes.Reader
}

func (r *replayReader) Read(p []byte) (int, error) {
	n, err := r.buf.Read(p)
	if err == io.EOF {
		r.buf.Reset(r.steady)
		n, err = r.buf.Read(p)
	}
	return n, err
}

// wireEncoding returns codec's exact frame payload for b (tag + body).
func wireEncoding(b matrix.Block) ([]byte, uint8, error) {
	payload, tag, err := codec.AppendWire(nil, b)
	if err != nil {
		return nil, 0, err
	}
	return payload, tag, nil
}

// verifyBlock re-encodes got with the codec and compares against the
// original's encoding — one mechanism that catches any value, structure,
// or concrete-type drift bit-for-bit.
func verifyBlock(name, path string, want []byte, wantTag uint8, got matrix.Block) error {
	enc, tag, err := codec.AppendWire(nil, got)
	if err != nil {
		return fmt.Errorf("wirebench: %s: %s decode re-encode: %w", name, path, err)
	}
	if tag != wantTag || !bytes.Equal(enc, want) {
		return fmt.Errorf("wirebench: %s: %s decode is not bit-identical to the original", name, path)
	}
	return nil
}

func usPerOp(r testing.BenchmarkResult) float64 {
	return float64(r.NsPerOp()) / 1e3
}

// codecResults benchmarks every block shape and hard-fails on any decode
// that is not bit-identical.
func codecResults() ([]CodecResult, error) {
	var out []CodecResult
	for _, tc := range benchBlocks() {
		wantPayload, wantTag, err := wireEncoding(tc.blk)
		if err != nil {
			return nil, err
		}

		// gob steady state: one warmup message carries the descriptors,
		// every later message is the per-block cost a connection pays.
		var gobBuf bytes.Buffer
		genc := gob.NewEncoder(&gobBuf)
		if err := genc.Encode(&tc.blk); err != nil {
			return nil, fmt.Errorf("wirebench: %s: gob warmup: %w", tc.name, err)
		}
		first := append([]byte(nil), gobBuf.Bytes()...)
		gobBuf.Reset()
		if err := genc.Encode(&tc.blk); err != nil {
			return nil, err
		}
		steady := append([]byte(nil), gobBuf.Bytes()...)

		rr := &replayReader{steady: steady}
		rr.buf.Reset(first)
		gdec := gob.NewDecoder(rr)
		var warm matrix.Block
		if err := gdec.Decode(&warm); err != nil {
			return nil, fmt.Errorf("wirebench: %s: gob warmup decode: %w", tc.name, err)
		}
		var gobGot matrix.Block
		if err := gdec.Decode(&gobGot); err != nil {
			return nil, fmt.Errorf("wirebench: %s: gob decode: %w", tc.name, err)
		}
		if err := verifyBlock(tc.name, "gob", wantPayload, wantTag, gobGot); err != nil {
			return nil, err
		}

		codecGot, err := codec.Decode(wantTag, wantPayload)
		if err != nil {
			return nil, fmt.Errorf("wirebench: %s: codec decode: %w", tc.name, err)
		}
		if err := verifyBlock(tc.name, "codec", wantPayload, wantTag, codecGot); err != nil {
			return nil, err
		}

		blk := tc.blk
		gobEnc := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				gobBuf.Reset()
				if err := genc.Encode(&blk); err != nil {
					b.Fatal(err)
				}
			}
		})
		gobDec := testing.Benchmark(func(b *testing.B) {
			var v matrix.Block
			for i := 0; i < b.N; i++ {
				if err := gdec.Decode(&v); err != nil {
					b.Fatal(err)
				}
			}
		})
		scratch := codec.GetBuffer()
		codecEnc := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var err error
				scratch, _, err = codec.AppendWire(scratch[:0], blk)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		codecDec := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := codec.Decode(wantTag, wantPayload); err != nil {
					b.Fatal(err)
				}
			}
		})
		codec.PutBuffer(scratch)

		res := CodecResult{
			Name:       tc.name,
			GobBytes:   len(steady),
			CodecBytes: len(wantPayload),
			GobEncUs:   usPerOp(gobEnc),
			CodecEncUs: usPerOp(codecEnc),
			GobDecUs:   usPerOp(gobDec),
			CodecDecUs: usPerOp(codecDec),
		}
		if res.CodecEncUs > 0 {
			res.EncSpeedup = res.GobEncUs / res.CodecEncUs
		}
		if res.CodecDecUs > 0 {
			res.DecSpeedup = res.GobDecUs / res.CodecDecUs
		}
		if rt := res.CodecEncUs + res.CodecDecUs; rt > 0 {
			res.RoundTripX = (res.GobEncUs + res.GobDecUs) / rt
		}
		out = append(out, res)
	}
	return out, nil
}

// cacheResult runs the replicated multiply cold and warm over real
// loopback sockets and verifies the two products are bit-identical.
func cacheResult() (CacheResult, error) {
	rng := rand.New(rand.NewSource(8081))
	a := bmat.RandomDense(rng, 256, 256, 32)
	b := bmat.RandomDense(rng, 256, 256, 32)
	params := core.Params{P: 2, Q: 2, R: 2}
	res := CacheResult{Params: params.String()}

	run := func(disable bool) (int64, int64, int64, *bmat.BlockMatrix, error) {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return 0, 0, 0, nil, err
		}
		defer l.Close()
		if _, err := distnet.Serve(l); err != nil {
			return 0, 0, 0, nil, err
		}
		d, err := distnet.DialOptions([]string{l.Addr().String()}, distnet.Options{DisableBlockCache: disable})
		if err != nil {
			return 0, 0, 0, nil, err
		}
		defer d.Close()
		c, err := d.Multiply(a, b, params)
		if err != nil {
			return 0, 0, 0, nil, err
		}
		sent, _ := d.WireBytes()
		stats := d.NetStats()
		return sent, stats.CacheRefsSent, stats.CacheBytesSaved, c, nil
	}

	coldSent, _, _, coldC, err := run(true)
	if err != nil {
		return res, err
	}
	warmSent, refs, saved, warmC, err := run(false)
	if err != nil {
		return res, err
	}
	cd, wd := coldC.ToDense(), warmC.ToDense()
	if len(cd.Data) != len(wd.Data) {
		return res, fmt.Errorf("wirebench: cold/warm product shapes differ")
	}
	for i := range cd.Data {
		if cd.Data[i] != wd.Data[i] {
			return res, fmt.Errorf("wirebench: warm-cache product differs from cold at element %d", i)
		}
	}
	res.ColdSentBytes = coldSent
	res.WarmSentBytes = warmSent
	res.CacheRefsSent = refs
	res.BytesSaved = saved
	return res, nil
}

// Run executes the full wire benchmark. Any decode that is not
// bit-identical to its input — gob or codec, block or whole product —
// returns an error, which distme-bench turns into a nonzero exit.
func Run() (*Report, error) { return RunTraced(nil) }

// RunTraced is Run with the codec and cache stages recorded as KindBench
// spans on tr (nil traces nothing), so `distme-bench -wire -trace-out`
// leaves an inspectable timeline of the run alongside the numbers.
func RunTraced(tr *obs.Tracer) (*Report, error) {
	r := &Report{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	root := tr.Start(0, "wirebench", obs.KindBench)
	defer root.End()

	csp := tr.Start(root.ID(), "codec", obs.KindBench)
	cres, err := codecResults()
	if err != nil {
		endBenchErr(csp, err)
		return nil, err
	}
	if csp.Active() {
		for _, b := range cres {
			csp.SetAttr(b.Name, fmt.Sprintf("gob %d B, codec %d B", b.GobBytes, b.CodecBytes))
		}
	}
	csp.End()
	r.Codec = cres

	ksp := tr.Start(root.ID(), "cache", obs.KindBench)
	cache, err := cacheResult()
	if err != nil {
		endBenchErr(ksp, err)
		return nil, err
	}
	if ksp.Active() {
		ksp.SetAttr("cold-sent", fmt.Sprintf("%d B", cache.ColdSentBytes))
		ksp.SetAttr("warm-sent", fmt.Sprintf("%d B", cache.WarmSentBytes))
	}
	ksp.End()
	r.Cache = cache
	return r, nil
}

func endBenchErr(sp obs.Span, err error) {
	if sp.Active() {
		sp.SetAttr("error", err.Error())
	}
	sp.End()
}

// WriteJSON writes the report, indented, to path.
func (r *Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Fprint renders the report as aligned text tables.
func (r *Report) Fprint(w io.Writer) {
	fmt.Fprintf(w, "wire benchmarks  %s  %s/%s  %d CPU (GOMAXPROCS=%d)  %s\n",
		r.GoVersion, r.GOOS, r.GOARCH, r.NumCPU, r.GOMAXPROCS, r.Date)
	fmt.Fprintf(w, "%-20s %10s %10s %10s %10s %10s %10s %8s\n",
		"block", "gob B", "codec B", "gob enc", "codec enc", "gob dec", "codec dec", "rt x")
	for _, c := range r.Codec {
		fmt.Fprintf(w, "%-20s %10d %10d %9.1fu %9.1fu %9.1fu %9.1fu %7.2fx\n",
			c.Name, c.GobBytes, c.CodecBytes,
			c.GobEncUs, c.CodecEncUs, c.GobDecUs, c.CodecDecUs, c.RoundTripX)
	}
	fmt.Fprintf(w, "block cache %s: cold sent %d B, warm sent %d B (%.0f%%), %d refs, %d B saved\n",
		r.Cache.Params, r.Cache.ColdSentBytes, r.Cache.WarmSentBytes,
		100*float64(r.Cache.WarmSentBytes)/float64(r.Cache.ColdSentBytes),
		r.Cache.CacheRefsSent, r.Cache.BytesSaved)
}
