// Package wirebench packages the wire-format regression benchmarks behind
// a library API so `distme-bench -wire` can emit a machine-readable
// artifact (BENCH_wire.json). Each entry pits gob — the repo's original
// RPC encoding, exercised through a persistent encoder/decoder pair the
// way a long-lived connection would — against internal/codec's binary
// framing on the same blocks, and every decoded block is re-verified
// bit-for-bit against the original before any number is reported: a
// decode mismatch fails the run, which is what the CI smoke step keys on.
//
// A second section measures what the content-addressed block cache buys
// end-to-end: one replicated cuboid multiply against a loopback worker,
// cold (cache disabled) versus warm, in real socket bytes.
package wirebench

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"os"
	"runtime"
	"testing"
	"time"

	"distme/internal/bmat"
	"distme/internal/codec"
	"distme/internal/core"
	"distme/internal/distnet"
	"distme/internal/matrix"
	"distme/internal/obs"
)

// CodecResult is one gob-vs-codec comparison on a single block shape. The
// speedup is throughput-based over the full encode+decode round trip.
type CodecResult struct {
	Name       string  `json:"name"`
	GobBytes   int     `json:"gob_bytes"`
	CodecBytes int     `json:"codec_bytes"`
	GobEncUs   float64 `json:"gob_encode_us_per_op"`
	CodecEncUs float64 `json:"codec_encode_us_per_op"`
	GobDecUs   float64 `json:"gob_decode_us_per_op"`
	CodecDecUs float64 `json:"codec_decode_us_per_op"`
	EncSpeedup float64 `json:"encode_speedup"`
	DecSpeedup float64 `json:"decode_speedup"`
	RoundTripX float64 `json:"roundtrip_speedup"`
}

// CacheResult is the cold-vs-warm socket comparison for one replicated
// multiply: identical plan, identical product, different bytes.
type CacheResult struct {
	Params        string `json:"params"`
	ColdSentBytes int64  `json:"cold_sent_bytes"`
	WarmSentBytes int64  `json:"warm_sent_bytes"`
	CacheRefsSent int64  `json:"cache_refs_sent"`
	BytesSaved    int64  `json:"cache_bytes_saved"`
}

// WritevResult compares frame assembly with a payload copy (append the
// value bytes into the contiguous frame buffer, the pre-scatter-gather
// wire) against the scatter-gather assembly the codecs now use (structural
// prefix only; the value bytes ride as a zero-copy segment).
type WritevResult struct {
	Name    string  `json:"name"`
	Bytes   int     `json:"frame_bytes"`
	CopyUs  float64 `json:"copy_assemble_us_per_op"`
	SGUs    float64 `json:"sg_assemble_us_per_op"`
	Speedup float64 `json:"assemble_speedup"`
}

// EncodingResult reports one opt-in encoding on one block: the byte ratio
// versus the fp64 wire form plus encode/decode timings. Every decode is
// verified before timing — bit-exact for the lossless compressor, exact
// float32 projection for fp32.
type EncodingResult struct {
	Name     string  `json:"name"`
	Encoding string  `json:"encoding"`
	RawBytes int     `json:"fp64_bytes"`
	EncBytes int     `json:"encoded_bytes"`
	Ratio    float64 `json:"byte_ratio"`
	EncUs    float64 `json:"encode_us_per_op"`
	DecUs    float64 `json:"decode_us_per_op"`
}

// BatchResult is the many-tiny-cuboids comparison: the same plan over the
// same loopback worker, one RPC per cuboid versus MultiplyBatch groups,
// with bit-identical products required before any number is reported.
type BatchResult struct {
	Params      string  `json:"params"`
	Items       int64   `json:"items"`
	UnbatchedMs float64 `json:"unbatched_ms"`
	BatchedMs   float64 `json:"batched_ms"`
	BatchRPCs   int64   `json:"batch_rpcs"`
	ThroughputX float64 `json:"throughput_speedup"`
}

// PullResult is the push-vs-pull data-plane comparison over warm operands:
// the same multiply on the same four loopback workers, once with the driver
// shipping every cuboid slice and once shipping only placement manifests.
// Driver bytes are the first (cold-tracker) run's socket delta; wall clock
// is the best of three. The products must be bit-identical, and the pull
// run must move at least 5× fewer driver bytes, or the whole bench fails.
type PullResult struct {
	Params          string  `json:"params"`
	Workers         int     `json:"workers"`
	PushDriverBytes int64   `json:"push_driver_bytes"`
	PullDriverBytes int64   `json:"pull_driver_bytes"`
	PullPeerBytes   int64   `json:"pull_peer_bytes"`
	PushWallMs      float64 `json:"push_wall_ms"`
	PullWallMs      float64 `json:"pull_wall_ms"`
	DriverByteX     float64 `json:"driver_byte_reduction"`
}

// Report is the full wire benchmark run.
type Report struct {
	Date       string           `json:"date"`
	GoVersion  string           `json:"go_version"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	NumCPU     int              `json:"num_cpu"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Codec      []CodecResult    `json:"codec"`
	Cache      CacheResult      `json:"cache"`
	Writev     []WritevResult   `json:"writev"`
	Encodings  []EncodingResult `json:"encodings"`
	Batch      BatchResult      `json:"batch"`
	Pull       PullResult       `json:"pull"`
}

// benchBlocks is the shape menagerie: the dense entries are the ones the
// ≥3× acceptance bar applies to; the sparse entries keep the compact
// forms honest.
func benchBlocks() []struct {
	name string
	blk  matrix.Block
} {
	rng := rand.New(rand.NewSource(8080))
	dense := func(r, c int) *matrix.Dense {
		d := matrix.NewDense(r, c)
		for i := range d.Data {
			d.Data[i] = rng.NormFloat64()
		}
		return d
	}
	sparse := func(r, c int, density float64) *matrix.Dense {
		d := matrix.NewDense(r, c)
		for i := range d.Data {
			if rng.Float64() < density {
				d.Data[i] = rng.NormFloat64()
			}
		}
		return d
	}
	return []struct {
		name string
		blk  matrix.Block
	}{
		{"dense-64x64", dense(64, 64)},
		{"dense-256x256", dense(256, 256)},
		{"csr-256x256-5pct", matrix.NewCSRFromDense(sparse(256, 256, 0.05))},
		{"csc-256x256-20pct", matrix.NewCSCFromDense(sparse(256, 256, 0.20))},
	}
}

func init() {
	// The gob side needs the concrete block types registered, exactly as
	// the old wire protocol did before the binary codec replaced it.
	gob.Register(&matrix.Dense{})
	gob.Register(&matrix.CSR{})
	gob.Register(&matrix.CSC{})
}

// replayReader serves the descriptor-bearing first gob message once (the
// caller primes buf with it), then replays the steady-state message
// forever — a synthetic long-lived connection, so the decoder is
// benchmarked without per-message descriptor costs.
type replayReader struct {
	steady []byte
	buf    bytes.Reader
}

func (r *replayReader) Read(p []byte) (int, error) {
	n, err := r.buf.Read(p)
	if err == io.EOF {
		r.buf.Reset(r.steady)
		n, err = r.buf.Read(p)
	}
	return n, err
}

// wireEncoding returns codec's exact frame payload for b (tag + body).
func wireEncoding(b matrix.Block) ([]byte, uint8, error) {
	payload, tag, err := codec.AppendWire(nil, b)
	if err != nil {
		return nil, 0, err
	}
	return payload, tag, nil
}

// verifyBlock re-encodes got with the codec and compares against the
// original's encoding — one mechanism that catches any value, structure,
// or concrete-type drift bit-for-bit.
func verifyBlock(name, path string, want []byte, wantTag uint8, got matrix.Block) error {
	enc, tag, err := codec.AppendWire(nil, got)
	if err != nil {
		return fmt.Errorf("wirebench: %s: %s decode re-encode: %w", name, path, err)
	}
	if tag != wantTag || !bytes.Equal(enc, want) {
		return fmt.Errorf("wirebench: %s: %s decode is not bit-identical to the original", name, path)
	}
	return nil
}

func usPerOp(r testing.BenchmarkResult) float64 {
	return float64(r.NsPerOp()) / 1e3
}

// codecResults benchmarks every block shape and hard-fails on any decode
// that is not bit-identical.
func codecResults() ([]CodecResult, error) {
	var out []CodecResult
	for _, tc := range benchBlocks() {
		wantPayload, wantTag, err := wireEncoding(tc.blk)
		if err != nil {
			return nil, err
		}

		// gob steady state: one warmup message carries the descriptors,
		// every later message is the per-block cost a connection pays.
		var gobBuf bytes.Buffer
		genc := gob.NewEncoder(&gobBuf)
		if err := genc.Encode(&tc.blk); err != nil {
			return nil, fmt.Errorf("wirebench: %s: gob warmup: %w", tc.name, err)
		}
		first := append([]byte(nil), gobBuf.Bytes()...)
		gobBuf.Reset()
		if err := genc.Encode(&tc.blk); err != nil {
			return nil, err
		}
		steady := append([]byte(nil), gobBuf.Bytes()...)

		rr := &replayReader{steady: steady}
		rr.buf.Reset(first)
		gdec := gob.NewDecoder(rr)
		var warm matrix.Block
		if err := gdec.Decode(&warm); err != nil {
			return nil, fmt.Errorf("wirebench: %s: gob warmup decode: %w", tc.name, err)
		}
		var gobGot matrix.Block
		if err := gdec.Decode(&gobGot); err != nil {
			return nil, fmt.Errorf("wirebench: %s: gob decode: %w", tc.name, err)
		}
		if err := verifyBlock(tc.name, "gob", wantPayload, wantTag, gobGot); err != nil {
			return nil, err
		}

		codecGot, err := codec.Decode(wantTag, wantPayload)
		if err != nil {
			return nil, fmt.Errorf("wirebench: %s: codec decode: %w", tc.name, err)
		}
		if err := verifyBlock(tc.name, "codec", wantPayload, wantTag, codecGot); err != nil {
			return nil, err
		}

		blk := tc.blk
		gobEnc := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				gobBuf.Reset()
				if err := genc.Encode(&blk); err != nil {
					b.Fatal(err)
				}
			}
		})
		gobDec := testing.Benchmark(func(b *testing.B) {
			var v matrix.Block
			for i := 0; i < b.N; i++ {
				if err := gdec.Decode(&v); err != nil {
					b.Fatal(err)
				}
			}
		})
		scratch := codec.GetBuffer()
		codecEnc := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var err error
				scratch, _, err = codec.AppendWire(scratch[:0], blk)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		codecDec := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := codec.Decode(wantTag, wantPayload); err != nil {
					b.Fatal(err)
				}
			}
		})
		codec.PutBuffer(scratch)

		res := CodecResult{
			Name:       tc.name,
			GobBytes:   len(steady),
			CodecBytes: len(wantPayload),
			GobEncUs:   usPerOp(gobEnc),
			CodecEncUs: usPerOp(codecEnc),
			GobDecUs:   usPerOp(gobDec),
			CodecDecUs: usPerOp(codecDec),
		}
		if res.CodecEncUs > 0 {
			res.EncSpeedup = res.GobEncUs / res.CodecEncUs
		}
		if res.CodecDecUs > 0 {
			res.DecSpeedup = res.GobDecUs / res.CodecDecUs
		}
		if rt := res.CodecEncUs + res.CodecDecUs; rt > 0 {
			res.RoundTripX = (res.GobEncUs + res.GobDecUs) / rt
		}
		out = append(out, res)
	}
	return out, nil
}

// cacheResult runs the replicated multiply cold and warm over real
// loopback sockets and verifies the two products are bit-identical.
func cacheResult() (CacheResult, error) {
	rng := rand.New(rand.NewSource(8081))
	a := bmat.RandomDense(rng, 256, 256, 32)
	b := bmat.RandomDense(rng, 256, 256, 32)
	params := core.Params{P: 2, Q: 2, R: 2}
	res := CacheResult{Params: params.String()}

	run := func(disable bool) (int64, int64, int64, *bmat.BlockMatrix, error) {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return 0, 0, 0, nil, err
		}
		defer l.Close()
		if _, err := distnet.Serve(l); err != nil {
			return 0, 0, 0, nil, err
		}
		d, err := distnet.DialOptions([]string{l.Addr().String()}, distnet.Options{DisableBlockCache: disable})
		if err != nil {
			return 0, 0, 0, nil, err
		}
		defer d.Close()
		c, err := d.Multiply(a, b, params)
		if err != nil {
			return 0, 0, 0, nil, err
		}
		sent, _ := d.WireBytes()
		stats := d.NetStats()
		return sent, stats.CacheRefsSent, stats.CacheBytesSaved, c, nil
	}

	coldSent, _, _, coldC, err := run(true)
	if err != nil {
		return res, err
	}
	warmSent, refs, saved, warmC, err := run(false)
	if err != nil {
		return res, err
	}
	cd, wd := coldC.ToDense(), warmC.ToDense()
	if len(cd.Data) != len(wd.Data) {
		return res, fmt.Errorf("wirebench: cold/warm product shapes differ")
	}
	for i := range cd.Data {
		if cd.Data[i] != wd.Data[i] {
			return res, fmt.Errorf("wirebench: warm-cache product differs from cold at element %d", i)
		}
	}
	res.ColdSentBytes = coldSent
	res.WarmSentBytes = warmSent
	res.CacheRefsSent = refs
	res.BytesSaved = saved
	return res, nil
}

// writevResults benchmarks frame assembly on large dense blocks: the
// contiguous build (structural prefix plus a copy of the value bytes, what
// every send paid before scatter-gather framing) against the scatter-gather
// build (structural prefix only; the raw fp64 value bytes ride to writev as
// a zero-copy segment). Both assemblies are first verified to describe the
// identical wire bytes.
func writevResults() ([]WritevResult, error) {
	rng := rand.New(rand.NewSource(8082))
	dense := func(n int) *matrix.Dense {
		d := matrix.NewDense(n, n)
		for i := range d.Data {
			d.Data[i] = rng.NormFloat64()
		}
		return d
	}
	cases := []struct {
		name string
		blk  matrix.Block
	}{
		{"dense-256x256", dense(256)},
		{"dense-512x512", dense(512)},
	}
	var out []WritevResult
	for _, tc := range cases {
		blk := tc.blk
		contig, tag, err := codec.AppendWireEnc(nil, blk, codec.EncodingFP64)
		if err != nil {
			return nil, err
		}
		pre, sgTag, tail, err := codec.AppendWireSG(nil, blk, codec.EncodingFP64)
		if err != nil {
			return nil, err
		}
		joined := append(append([]byte(nil), pre...), tail...)
		if sgTag != tag || !bytes.Equal(joined, contig) {
			return nil, fmt.Errorf("wirebench: %s: scatter-gather assembly is not byte-identical to contiguous", tc.name)
		}

		scratch := codec.GetBuffer()
		copyBench := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var err error
				scratch, _, err = codec.AppendWireEnc(scratch[:0], blk, codec.EncodingFP64)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		sgBench := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var err error
				scratch, _, _, err = codec.AppendWireSG(scratch[:0], blk, codec.EncodingFP64)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		codec.PutBuffer(scratch)

		res := WritevResult{Name: tc.name, Bytes: len(contig), CopyUs: usPerOp(copyBench), SGUs: usPerOp(sgBench)}
		if res.SGUs > 0 {
			res.Speedup = res.CopyUs / res.SGUs
		}
		out = append(out, res)
	}
	return out, nil
}

// encodingResults reports every opt-in encoding against the fp64 wire form.
// Decodes are verified before timing: the compressor must round-trip
// bit-exactly, fp32 must land exactly on the float32 projection of the
// original values.
func encodingResults() ([]EncodingResult, error) {
	rng := rand.New(rand.NewSource(8083))
	dense := func(n int, gen func() float64) *matrix.Dense {
		d := matrix.NewDense(n, n)
		for i := range d.Data {
			d.Data[i] = gen()
		}
		return d
	}
	var smoothCounter float64
	cases := []struct {
		name string
		blk  matrix.Block
	}{
		{"dense-256x256", dense(256, rng.NormFloat64)},
		{"dense-256x256-smooth", dense(256, func() (v float64) {
			// Slowly varying values (constant 64-long runs): the XOR
			// compressor's best case, standing in for iterative workloads
			// whose blocks converge.
			v = smoothCounter
			smoothCounter += 1.0 / 64
			return math.Floor(v)
		})},
		{"csr-256x256-5pct", matrix.NewCSRFromDense(dense(256, func() float64 {
			if rng.Float64() < 0.05 {
				return rng.NormFloat64()
			}
			return 0
		}))},
	}
	var out []EncodingResult
	for _, tc := range cases {
		raw := int(codec.EncodedBytesEnc(tc.blk, codec.EncodingFP64))
		for _, enc := range []codec.Encoding{codec.EncodingFP32, codec.EncodingCompress} {
			payload, tag, err := codec.AppendWireEnc(nil, tc.blk, enc)
			if err != nil {
				return nil, fmt.Errorf("wirebench: %s/%v encode: %w", tc.name, enc, err)
			}
			got, err := codec.Decode(tag, payload)
			if err != nil {
				return nil, fmt.Errorf("wirebench: %s/%v decode: %w", tc.name, enc, err)
			}
			want, have := tc.blk.Dense(), got.Dense()
			for i := range want.Data {
				w := want.Data[i]
				if enc == codec.EncodingFP32 {
					w = float64(float32(w))
				}
				if w != have.Data[i] {
					return nil, fmt.Errorf("wirebench: %s/%v: decode diverges at element %d", tc.name, enc, i)
				}
			}

			blk := tc.blk
			scratch := codec.GetBuffer()
			encBench := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					var err error
					scratch, _, err = codec.AppendWireEnc(scratch[:0], blk, enc)
					if err != nil {
						b.Fatal(err)
					}
				}
			})
			decBench := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := codec.Decode(tag, payload); err != nil {
						b.Fatal(err)
					}
				}
			})
			codec.PutBuffer(scratch)

			res := EncodingResult{
				Name:     tc.name,
				Encoding: enc.String(),
				RawBytes: raw,
				EncBytes: len(payload),
				EncUs:    usPerOp(encBench),
				DecUs:    usPerOp(decBench),
			}
			if raw > 0 {
				res.Ratio = float64(len(payload)) / float64(raw)
			}
			out = append(out, res)
		}
	}
	return out, nil
}

// batchResult runs a many-tiny-cuboids plan against one loopback worker,
// one RPC per cuboid versus MultiplyBatch groups. Each side takes the best
// of three runs; the products must be bit-identical before any time is
// reported.
func batchResult() (BatchResult, error) {
	rng := rand.New(rand.NewSource(8084))
	a := bmat.RandomDense(rng, 32, 32, 2) // 16×16 grid of 2×2 blocks
	b := bmat.RandomDense(rng, 32, 32, 2)
	params := core.Params{P: 16, Q: 16, R: 1} // 256 tiny cuboids
	res := BatchResult{Params: params.String()}

	run := func(batch bool) (time.Duration, int64, int64, *bmat.BlockMatrix, error) {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return 0, 0, 0, nil, err
		}
		defer l.Close()
		if _, err := distnet.Serve(l); err != nil {
			return 0, 0, 0, nil, err
		}
		opts := distnet.Options{}
		if batch {
			opts.BatchBytes = 1 << 20
		}
		d, err := distnet.DialOptions([]string{l.Addr().String()}, opts)
		if err != nil {
			return 0, 0, 0, nil, err
		}
		defer d.Close()
		best := time.Duration(0)
		var c *bmat.BlockMatrix
		for i := 0; i < 3; i++ {
			start := time.Now()
			c, err = d.Multiply(a, b, params)
			el := time.Since(start)
			if err != nil {
				return 0, 0, 0, nil, err
			}
			if best == 0 || el < best {
				best = el
			}
		}
		stats := d.NetStats()
		return best, stats.BatchRPCs, stats.BatchItems, c, nil
	}

	plainT, _, _, plainC, err := run(false)
	if err != nil {
		return res, err
	}
	batchT, rpcs, items, batchC, err := run(true)
	if err != nil {
		return res, err
	}
	pd, bd := plainC.ToDense(), batchC.ToDense()
	if len(pd.Data) != len(bd.Data) {
		return res, fmt.Errorf("wirebench: batched product shape differs")
	}
	for i := range pd.Data {
		if pd.Data[i] != bd.Data[i] {
			return res, fmt.Errorf("wirebench: batched product differs from unbatched at element %d", i)
		}
	}
	res.Items = items / 3 // three timed runs; report one plan's worth
	res.UnbatchedMs = float64(plainT.Microseconds()) / 1e3
	res.BatchedMs = float64(batchT.Microseconds()) / 1e3
	res.BatchRPCs = rpcs / 3
	if batchT > 0 {
		res.ThroughputX = float64(plainT) / float64(batchT)
	}
	return res, nil
}

// pullResult measures the warm-operand push-vs-pull comparison: a fresh
// four-worker cluster per mode, operands Put once into a session (resident
// on the workers), then the same explicit-params multiply through each data
// plane. The byte delta of the first multiply is the driver's data-path
// cost — push re-ships every cuboid slice, pull ships manifests and lets
// the workers fetch slices from each other.
func pullResult() (PullResult, error) {
	rng := rand.New(rand.NewSource(8085))
	a := bmat.RandomDense(rng, 256, 192, 32)
	b := bmat.RandomDense(rng, 192, 256, 32)
	params := core.Params{P: 2, Q: 2, R: 1}
	const workers = 4
	res := PullResult{Params: params.String(), Workers: workers}
	ctx := context.Background()

	run := func(mode core.Transfer) (driverBytes, peerBytes int64, wall time.Duration, c *bmat.BlockMatrix, err error) {
		addrs := make([]string, 0, workers)
		for i := 0; i < workers; i++ {
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return 0, 0, 0, nil, err
			}
			defer l.Close()
			if _, err := distnet.Serve(l); err != nil {
				return 0, 0, 0, nil, err
			}
			addrs = append(addrs, l.Addr().String())
		}
		d, err := distnet.Dial(addrs)
		if err != nil {
			return 0, 0, 0, nil, err
		}
		defer d.Close()
		s, err := d.NewSession(ctx)
		if err != nil {
			return 0, 0, 0, nil, err
		}
		defer s.Close(ctx)
		ha, err := s.Put(ctx, a)
		if err != nil {
			return 0, 0, 0, nil, err
		}
		hb, err := s.Put(ctx, b)
		if err != nil {
			return 0, 0, 0, nil, err
		}
		sent0, _ := d.WireBytes()
		for i := 0; i < 3; i++ {
			start := time.Now()
			c, _, err = s.Multiply(ctx, ha, hb, distnet.MultiplyOptions{Params: &params, Transfer: mode})
			el := time.Since(start)
			if err != nil {
				return 0, 0, 0, nil, err
			}
			if i == 0 {
				sent1, _ := d.WireBytes()
				driverBytes = sent1 - sent0
			}
			if wall == 0 || el < wall {
				wall = el
			}
		}
		return driverBytes, d.NetStats().PullPeerBytes, wall, c, nil
	}

	pushBytes, _, pushWall, pushC, err := run(core.TransferPush)
	if err != nil {
		return res, err
	}
	pullBytes, peerBytes, pullWall, pullC, err := run(core.TransferPull)
	if err != nil {
		return res, err
	}
	pd, ld := pushC.ToDense(), pullC.ToDense()
	if len(pd.Data) != len(ld.Data) {
		return res, fmt.Errorf("wirebench: pull product shape differs from push")
	}
	for i := range pd.Data {
		if math.Float64bits(pd.Data[i]) != math.Float64bits(ld.Data[i]) {
			return res, fmt.Errorf("wirebench: pull product differs from push at element %d", i)
		}
	}
	res.PushDriverBytes = pushBytes
	res.PullDriverBytes = pullBytes
	res.PullPeerBytes = peerBytes
	res.PushWallMs = float64(pushWall.Microseconds()) / 1e3
	res.PullWallMs = float64(pullWall.Microseconds()) / 1e3
	if pullBytes > 0 {
		res.DriverByteX = float64(pushBytes) / float64(pullBytes)
	}
	if pullBytes*5 >= pushBytes {
		return res, fmt.Errorf("wirebench: pull moved %d driver bytes against push's %d — less than the required 5x reduction",
			pullBytes, pushBytes)
	}
	return res, nil
}

// Run executes the full wire benchmark. Any decode that is not
// bit-identical to its input — gob or codec, block or whole product —
// returns an error, which distme-bench turns into a nonzero exit.
func Run() (*Report, error) { return RunTraced(nil) }

// RunTraced is Run with the codec and cache stages recorded as KindBench
// spans on tr (nil traces nothing), so `distme-bench -wire -trace-out`
// leaves an inspectable timeline of the run alongside the numbers.
func RunTraced(tr *obs.Tracer) (*Report, error) {
	r := &Report{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	root := tr.Start(0, "wirebench", obs.KindBench)
	defer root.End()

	csp := tr.Start(root.ID(), "codec", obs.KindBench)
	cres, err := codecResults()
	if err != nil {
		endBenchErr(csp, err)
		return nil, err
	}
	if csp.Active() {
		for _, b := range cres {
			csp.SetAttr(b.Name, fmt.Sprintf("gob %d B, codec %d B", b.GobBytes, b.CodecBytes))
		}
	}
	csp.End()
	r.Codec = cres

	ksp := tr.Start(root.ID(), "cache", obs.KindBench)
	cache, err := cacheResult()
	if err != nil {
		endBenchErr(ksp, err)
		return nil, err
	}
	if ksp.Active() {
		ksp.SetAttr("cold-sent", fmt.Sprintf("%d B", cache.ColdSentBytes))
		ksp.SetAttr("warm-sent", fmt.Sprintf("%d B", cache.WarmSentBytes))
	}
	ksp.End()
	r.Cache = cache

	wsp := tr.Start(root.ID(), "writev", obs.KindBench)
	wres, err := writevResults()
	if err != nil {
		endBenchErr(wsp, err)
		return nil, err
	}
	if wsp.Active() {
		for _, b := range wres {
			wsp.SetAttr(b.Name, fmt.Sprintf("copy %.1fus, sg %.1fus", b.CopyUs, b.SGUs))
		}
	}
	wsp.End()
	r.Writev = wres

	esp := tr.Start(root.ID(), "encodings", obs.KindBench)
	eres, err := encodingResults()
	if err != nil {
		endBenchErr(esp, err)
		return nil, err
	}
	if esp.Active() {
		for _, b := range eres {
			esp.SetAttr(b.Name+"/"+b.Encoding, fmt.Sprintf("%d B of %d B", b.EncBytes, b.RawBytes))
		}
	}
	esp.End()
	r.Encodings = eres

	bsp := tr.Start(root.ID(), "batch", obs.KindBench)
	bres, err := batchResult()
	if err != nil {
		endBenchErr(bsp, err)
		return nil, err
	}
	if bsp.Active() {
		bsp.SetAttr("items", fmt.Sprintf("%d", bres.Items))
		bsp.SetAttr("speedup", fmt.Sprintf("%.2fx", bres.ThroughputX))
	}
	bsp.End()
	r.Batch = bres

	psp := tr.Start(root.ID(), "pull", obs.KindBench)
	pres, err := pullResult()
	if err != nil {
		endBenchErr(psp, err)
		return nil, err
	}
	if psp.Active() {
		psp.SetAttr("push-driver", fmt.Sprintf("%d B", pres.PushDriverBytes))
		psp.SetAttr("pull-driver", fmt.Sprintf("%d B", pres.PullDriverBytes))
		psp.SetAttr("reduction", fmt.Sprintf("%.1fx", pres.DriverByteX))
	}
	psp.End()
	r.Pull = pres
	return r, nil
}

func endBenchErr(sp obs.Span, err error) {
	if sp.Active() {
		sp.SetAttr("error", err.Error())
	}
	sp.End()
}

// WriteJSON writes the report, indented, to path.
func (r *Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Fprint renders the report as aligned text tables.
func (r *Report) Fprint(w io.Writer) {
	fmt.Fprintf(w, "wire benchmarks  %s  %s/%s  %d CPU (GOMAXPROCS=%d)  %s\n",
		r.GoVersion, r.GOOS, r.GOARCH, r.NumCPU, r.GOMAXPROCS, r.Date)
	fmt.Fprintf(w, "%-20s %10s %10s %10s %10s %10s %10s %8s\n",
		"block", "gob B", "codec B", "gob enc", "codec enc", "gob dec", "codec dec", "rt x")
	for _, c := range r.Codec {
		fmt.Fprintf(w, "%-20s %10d %10d %9.1fu %9.1fu %9.1fu %9.1fu %7.2fx\n",
			c.Name, c.GobBytes, c.CodecBytes,
			c.GobEncUs, c.CodecEncUs, c.GobDecUs, c.CodecDecUs, c.RoundTripX)
	}
	fmt.Fprintf(w, "block cache %s: cold sent %d B, warm sent %d B (%.0f%%), %d refs, %d B saved\n",
		r.Cache.Params, r.Cache.ColdSentBytes, r.Cache.WarmSentBytes,
		100*float64(r.Cache.WarmSentBytes)/float64(r.Cache.ColdSentBytes),
		r.Cache.CacheRefsSent, r.Cache.BytesSaved)
	if len(r.Writev) > 0 {
		fmt.Fprintf(w, "%-20s %10s %12s %12s %8s\n", "frame assembly", "bytes", "copy", "scatter", "x")
		for _, v := range r.Writev {
			fmt.Fprintf(w, "%-20s %10d %11.1fu %11.1fu %7.2fx\n", v.Name, v.Bytes, v.CopyUs, v.SGUs, v.Speedup)
		}
	}
	if len(r.Encodings) > 0 {
		fmt.Fprintf(w, "%-32s %10s %10s %7s %10s %10s\n", "encoding", "fp64 B", "enc B", "ratio", "enc", "dec")
		for _, e := range r.Encodings {
			fmt.Fprintf(w, "%-32s %10d %10d %7.2f %9.1fu %9.1fu\n",
				e.Name+"/"+e.Encoding, e.RawBytes, e.EncBytes, e.Ratio, e.EncUs, e.DecUs)
		}
	}
	if r.Batch.Items > 0 {
		fmt.Fprintf(w, "batched small multiplies %s: %d items, unbatched %.1f ms, batched %.1f ms over %d RPCs (%.2fx)\n",
			r.Batch.Params, r.Batch.Items, r.Batch.UnbatchedMs, r.Batch.BatchedMs, r.Batch.BatchRPCs, r.Batch.ThroughputX)
	}
	if r.Pull.Workers > 0 {
		fmt.Fprintf(w, "pull plane %s over %d workers: driver push %d B vs pull %d B (%.1fx fewer), peers moved %d B; wall push %.1f ms vs pull %.1f ms\n",
			r.Pull.Params, r.Pull.Workers, r.Pull.PushDriverBytes, r.Pull.PullDriverBytes,
			r.Pull.DriverByteX, r.Pull.PullPeerBytes, r.Pull.PushWallMs, r.Pull.PullWallMs)
	}
}
