package gpu

import (
	"fmt"

	"distme/internal/bmat"
	"distme/internal/core"
	"distme/internal/matrix"
	"distme/internal/metrics"
)

// Multiplier is the GPU-accelerated local multiplication of §4: it
// implements core.LocalMultiplier by partitioning each cuboid into
// subcuboids that fit θg (Eq. 5–6) and streaming them through the simulated
// device following Algorithm 1. Results are computed for real; the device
// timeline records PCI-E traffic, kernel overlap and utilization.
type Multiplier struct {
	// Device is the simulated device shared (via MPS) by this job's tasks.
	Device *Device
	// Recorder, when set, is charged StepPCIE for every bus transfer.
	Recorder *metrics.Recorder
}

// NewMultiplier creates a Multiplier on a fresh device with the given spec.
func NewMultiplier(spec Spec, rec *metrics.Recorder) *Multiplier {
	return &Multiplier{Device: NewDevice(spec), Recorder: rec}
}

var _ core.LocalMultiplier = (*Multiplier)(nil)

// Multiply implements Algorithm 1 for one cuboid: optimize (P2,Q2,R2),
// stream subcuboids in (p2,q2,r2) order keeping the C buffer resident
// across the k-axis, copying the smaller input side as a chunk and the
// bigger side block-by-block on per-j streams, and copy C back after the
// last k-subcuboid.
func (m *Multiplier) Multiply(c *core.Cuboid) (map[bmat.BlockKey]*matrix.Dense, error) {
	if c.Voxels() == 0 {
		return map[bmat.BlockKey]*matrix.Dense{}, nil
	}
	shape := c.Shape()
	spec := m.Device.Spec()
	sub, err := core.OptimizeSub(shape, spec.MemPerTaskBytes)
	if err != nil {
		return nil, err
	}
	sub, err = m.fitSubParams(c, sub)
	if err != nil {
		return nil, err
	}

	tl := newTaskTimeline(spec, shape.JB)
	tl.device = m.Device
	out := make(map[bmat.BlockKey]*matrix.Dense)

	for p2 := 0; p2 < sub.P2; p2++ {
		ilo, ihi := spanWithin(c.ILo, c.IHi, p2, sub.P2)
		for q2 := 0; q2 < sub.Q2; q2++ {
			jlo, jhi := spanWithin(c.JLo, c.JHi, q2, sub.Q2)

			// Allocate the resident C' buffer for this (p2, q2) column.
			cBytes := denseBytes(c, ilo, ihi, jlo, jhi)
			if err := tl.alloc(cBytes); err != nil {
				return nil, err
			}

			for r2 := 0; r2 < sub.R2; r2++ {
				klo, khi := spanWithin(c.KLo, c.KHi, r2, sub.R2)
				if err := m.streamSubcuboid(c, tl, out, ilo, ihi, jlo, jhi, klo, khi); err != nil {
					return nil, err
				}
				tl.iterations++
			}

			// Last k-subcuboid done: copy C' back to host (Algorithm 1,
			// lines 19–21) and release it.
			tl.d2h(0, cBytes, fmt.Sprintf("C'(%d,%d)", p2, q2))
			tl.free(cBytes)
		}
	}

	if m.Recorder != nil {
		m.Recorder.AddBytes(metrics.StepPCIE, tl.h2dBytes+tl.d2hBytes)
	}
	m.Device.merge(tl)
	return out, nil
}

// streamSubcuboid runs one iteration: H2D of the smaller input side as a
// chunk, the bigger side block-by-block with per-stream kernel launches, and
// the real arithmetic into the resident accumulators.
func (m *Multiplier) streamSubcuboid(c *core.Cuboid, tl *taskTimeline, out map[bmat.BlockKey]*matrix.Dense, ilo, ihi, jlo, jhi, klo, khi int) error {
	aBytes := storedBytesA(c, ilo, ihi, klo, khi)
	bBytes := storedBytesB(c, klo, khi, jlo, jhi)
	if err := tl.alloc(aBytes + bBytes); err != nil {
		return err
	}
	defer tl.free(aBytes + bBytes)

	// "copy the smaller one between A^{m,n} and B^{m,n} as a chunk (H2D)
	// and then copy the other bigger one in a block-by-block fashion" §4.3.
	streamA := aBytes > bBytes // A is bigger → A streamed block-by-block
	chunkLabel := "chunk A'"
	if streamA {
		chunkLabel = "chunk B'"
	}
	var chunkReady = tl.h2d(0, minInt64(aBytes, bBytes), chunkLabel)

	if streamA {
		// B is the chunk; stream A blocks on i-indexed streams.
		for i := ilo; i < ihi; i++ {
			for k := klo; k < khi; k++ {
				ab := c.A.Block(i, k)
				if ab == nil {
					continue
				}
				copyEnd := tl.h2d(chunkReady, ab.SizeBytes(), fmt.Sprintf("A(%d,%d)", i, k))
				for j := jlo; j < jhi; j++ {
					bb := c.B.Block(k, j)
					if bb == nil {
						continue
					}
					tl.kernel(i-ilo, copyEnd, pairFlops(ab, bb), fmt.Sprintf("K(%d,%d*%d,%d)", i, k, k, j))
					accumulate(out, c, i, j, ab, bb)
				}
			}
		}
	} else {
		// A is the chunk; stream B blocks on j-indexed streams — the set of
		// B blocks updating the same C block shares a stream (§4.3).
		for k := klo; k < khi; k++ {
			for j := jlo; j < jhi; j++ {
				bb := c.B.Block(k, j)
				if bb == nil {
					continue
				}
				copyEnd := tl.h2d(chunkReady, bb.SizeBytes(), fmt.Sprintf("B(%d,%d)", k, j))
				for i := ilo; i < ihi; i++ {
					ab := c.A.Block(i, k)
					if ab == nil {
						continue
					}
					tl.kernel(j-jlo, copyEnd, pairFlops(ab, bb), fmt.Sprintf("K(%d,%d*%d,%d)", i, k, k, j))
					accumulate(out, c, i, j, ab, bb)
				}
			}
		}
	}
	return nil
}

// accumulate performs the real arithmetic of kernel K_{i,k*k,j} into the
// resident accumulator for C block (i, j).
func accumulate(out map[bmat.BlockKey]*matrix.Dense, c *core.Cuboid, i, j int, ab, bb matrix.Block) {
	key := bmat.BlockKey{I: i, J: j}
	out[key] = matrix.MulAdd(out[key], ab, bb)
}

// fitSubParams verifies the optimizer's average-size parameters against the
// actual (possibly ragged, possibly skewed-sparsity) subcuboid sizes and
// grows the partitioning until every iteration's working set fits θg. This
// is the elastic adjustment a real implementation needs because Eq.(5) uses
// average sizes.
func (m *Multiplier) fitSubParams(c *core.Cuboid, sub core.SubParams) (core.SubParams, error) {
	θ := m.Device.Spec().MemPerTaskBytes
	shape := c.Shape()
	for {
		if m.fits(c, sub, θ) {
			return sub, nil
		}
		switch {
		case sub.R2 < shape.KB:
			sub.R2++
		case sub.Q2 < shape.JB:
			sub.Q2++
		case sub.P2 < shape.IB:
			sub.P2++
		default:
			return sub, fmt.Errorf("%w: cuboid %s even at voxel granularity", ErrDeviceOutOfMemory, c.Name())
		}
	}
}

// fits reports whether every iteration of the given subcuboid partitioning
// stays within the device budget.
func (m *Multiplier) fits(c *core.Cuboid, sub core.SubParams, θ int64) bool {
	if θ <= 0 {
		return true
	}
	for p2 := 0; p2 < sub.P2; p2++ {
		ilo, ihi := spanWithin(c.ILo, c.IHi, p2, sub.P2)
		for q2 := 0; q2 < sub.Q2; q2++ {
			jlo, jhi := spanWithin(c.JLo, c.JHi, q2, sub.Q2)
			cBytes := denseBytes(c, ilo, ihi, jlo, jhi)
			for r2 := 0; r2 < sub.R2; r2++ {
				klo, khi := spanWithin(c.KLo, c.KHi, r2, sub.R2)
				n := cBytes + storedBytesA(c, ilo, ihi, klo, khi) + storedBytesB(c, klo, khi, jlo, jhi)
				if n > θ {
					return false
				}
			}
		}
	}
	return true
}

// spanWithin splits the range [lo, hi) into parts balanced tiles and
// returns tile t, mirroring shuffle.GridSpan's boundaries.
func spanWithin(lo, hi, t, parts int) (int, int) {
	n := hi - lo
	return lo + t*n/parts, lo + (t+1)*n/parts
}

func storedBytesA(c *core.Cuboid, ilo, ihi, klo, khi int) int64 {
	var n int64
	for i := ilo; i < ihi; i++ {
		for k := klo; k < khi; k++ {
			if b := c.A.Block(i, k); b != nil {
				n += b.SizeBytes()
			}
		}
	}
	return n
}

func storedBytesB(c *core.Cuboid, klo, khi, jlo, jhi int) int64 {
	var n int64
	for k := klo; k < khi; k++ {
		for j := jlo; j < jhi; j++ {
			if b := c.B.Block(k, j); b != nil {
				n += b.SizeBytes()
			}
		}
	}
	return n
}

func denseBytes(c *core.Cuboid, ilo, ihi, jlo, jhi int) int64 {
	var n int64
	for i := ilo; i < ihi; i++ {
		r, _ := c.A.BlockDims(i, 0)
		for j := jlo; j < jhi; j++ {
			_, cc := c.B.BlockDims(0, j)
			n += int64(r) * int64(cc) * 8
		}
	}
	return n
}

// pairFlops estimates the kernel flop count for one block pair: dense GEMM
// is 2·m·k·n; a sparse left operand is 2·nnz·n (cusparseDcsrmm's work).
func pairFlops(a, b matrix.Block) float64 {
	am, ak := a.Dims()
	_, bn := b.Dims()
	if a.Format() != matrix.FormatDense {
		return 2 * float64(a.NNZ()) * float64(bn)
	}
	return 2 * float64(am) * float64(ak) * float64(bn)
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// BlockLevel is the degraded per-voxel GPU path available to RMM, which
// cannot batch consecutive voxels because its hash partitioning scatters
// them (§6.2): every block pair pays its own H2D copies and D2H of the
// result, so there is no C residency and utilization is copy-bound.
type BlockLevel struct {
	Device   *Device
	Recorder *metrics.Recorder
}

var _ core.VoxelMultiplier = (*BlockLevel)(nil)

// MultiplyPair multiplies one block pair through the device.
func (bl *BlockLevel) MultiplyPair(a, b matrix.Block) (*matrix.Dense, error) {
	spec := bl.Device.Spec()
	tl := newTaskTimeline(spec, 1)
	tl.device = bl.Device
	am, _ := a.Dims()
	_, bn := b.Dims()
	cBytes := int64(am) * int64(bn) * 8
	if err := tl.alloc(a.SizeBytes() + b.SizeBytes() + cBytes); err != nil {
		return nil, err
	}
	end := tl.h2d(0, a.SizeBytes(), "A")
	end = tl.h2d(end, b.SizeBytes(), "B")
	end = tl.kernel(0, end, pairFlops(a, b), "K")
	tl.d2h(end, cBytes, "C")
	tl.free(a.SizeBytes() + b.SizeBytes() + cBytes)
	tl.iterations++
	if bl.Recorder != nil {
		bl.Recorder.AddBytes(metrics.StepPCIE, tl.h2dBytes+tl.d2hBytes)
	}
	bl.Device.merge(tl)
	return matrix.MulAdd(nil, a, b), nil
}
