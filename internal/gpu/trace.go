package gpu

import (
	"fmt"
	"sort"
	"strings"

	"distme/internal/vclock"
)

// TraceEvent is one operation on the device timeline — the rows of the
// paper's Figure 5(b): H2D copies, kernel launches K_{i,k*k,j}, D2H copies.
type TraceEvent struct {
	// Task is the merge-order index of the task that issued the event.
	Task int
	// Stream is the stream index within the task (-1 for copy-engine ops).
	Stream int
	// Kind is "h2d", "kernel" or "d2h".
	Kind string
	// Label describes the operand, e.g. "B(2,0)" or "K(1,2*2,0)".
	Label string
	// Start and End are virtual seconds on the task's timeline.
	Start, End vclock.Time
	// Bytes is the payload for copies; Flops the work for kernels.
	Bytes int64
	Flops float64
}

// EnableTrace starts recording up to limit events per device (0 disables).
func (d *Device) EnableTrace(limit int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.traceLimit = limit
	d.trace = nil
}

// TraceLimit returns the current event-recording limit (0 = disabled), so
// callers layering their own tracing (the engine's span grafting) can tell
// whether someone else already enabled the device trace.
func (d *Device) TraceLimit() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.traceLimit
}

// Trace returns the recorded events, ordered by task then start time.
func (d *Device) Trace() []TraceEvent {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]TraceEvent, len(d.trace))
	copy(out, d.trace)
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Task != out[b].Task {
			return out[a].Task < out[b].Task
		}
		if out[a].Start != out[b].Start {
			return out[a].Start < out[b].Start
		}
		return out[a].Label < out[b].Label
	})
	return out
}

// recordTrace appends a task's events under the device lock (called from
// merge, which already holds ordering responsibilities).
func (d *Device) recordTrace(taskIdx int, events []TraceEvent) {
	if d.traceLimit <= 0 {
		return
	}
	for _, ev := range events {
		if len(d.trace) >= d.traceLimit {
			return
		}
		ev.Task = taskIdx
		d.trace = append(d.trace, ev)
	}
}

// FormatTrace renders events in Figure 5(b)'s spirit: one line per event,
// grouped by task and stream, with virtual microsecond timestamps.
func FormatTrace(events []TraceEvent) string {
	var sb strings.Builder
	lastTask := -1
	for _, ev := range events {
		if ev.Task != lastTask {
			fmt.Fprintf(&sb, "task t%d:\n", ev.Task)
			lastTask = ev.Task
		}
		lane := "copy "
		if ev.Stream >= 0 {
			lane = fmt.Sprintf("str %2d", ev.Stream)
		}
		switch ev.Kind {
		case "kernel":
			fmt.Fprintf(&sb, "  [%s] %8.1fµs–%8.1fµs  %-14s (%.0f flops)\n",
				lane, 1e6*float64(ev.Start), 1e6*float64(ev.End), ev.Label, ev.Flops)
		default:
			fmt.Fprintf(&sb, "  [%s] %8.1fµs–%8.1fµs  %-14s (%d B %s)\n",
				lane, 1e6*float64(ev.Start), 1e6*float64(ev.End), ev.Label, ev.Bytes, ev.Kind)
		}
	}
	return sb.String()
}
