// Package gpu simulates the GPU acceleration substrate of the paper's §4:
// a device with a per-task memory budget θg (the MPS share of one GPU among
// Tc tasks), a PCI-E copy engine on which host-to-device copies are
// serialized, multiple asynchronous streams whose kernels overlap with
// copies, and an event-driven virtual timeline. Kernels execute real
// arithmetic on the CPU (bit-exact results, so the distributed layers are
// verifiable) while the timeline reproduces the performance behavior that
// matters for the paper's figures: PCI-E traffic (Eq. 6), copy/compute
// overlap, C-resident aggregation across the k-axis, and core utilization.
package gpu

import (
	"errors"
	"fmt"
	"sync"

	"distme/internal/vclock"
)

// ErrDeviceOutOfMemory reports that a subcuboid's working set exceeded θg.
var ErrDeviceOutOfMemory = errors.New("gpu: subcuboid exceeds device memory budget θg")

// Spec describes the simulated device as one task sees it.
type Spec struct {
	// MemPerTaskBytes is θg, this task's share of device memory under MPS.
	MemPerTaskBytes int64
	// PCIEBandwidth is the host↔device copy rate in bytes/second.
	PCIEBandwidth float64
	// Flops is the kernel throughput in flop/s used for virtual durations.
	Flops float64
	// MaxStreams caps concurrent streams per task (the paper notes a
	// typical limit of 32; more streams are multiplexed by the scheduler).
	MaxStreams int
	// KernelLaunchOverhead is the fixed virtual seconds per kernel launch.
	KernelLaunchOverhead float64
}

// PaperSpec models the testbed GPU (GTX 1080 Ti, 11 GB) as one of ten MPS
// tasks sees it: θg = 1 GB, PCI-E 3.0 ×16 shared, FP64 throughput ≈ 1/32 of
// the FP32 peak.
func PaperSpec() Spec {
	return Spec{
		MemPerTaskBytes:      1e9,
		PCIEBandwidth:        12e9 / 10, // effective PCI-E split across Tc=10 tasks
		Flops:                332e9 / 10,
		MaxStreams:           32,
		KernelLaunchOverhead: 5e-6,
	}
}

// Stats aggregates timeline observations across every task that used the
// simulated device during one job.
type Stats struct {
	// H2DBytes and D2HBytes are the PCI-E traffic in each direction.
	H2DBytes, D2HBytes int64
	// KernelBusy is the union length of kernel-busy intervals, in virtual
	// seconds, summed over tasks.
	KernelBusy float64
	// Makespan is the total virtual duration of all task timelines.
	Makespan float64
	// Kernels is the number of kernel launches.
	Kernels int
	// Iterations is the number of subcuboids streamed.
	Iterations int
	// MemHighWater is the maximum device working set observed (bytes).
	MemHighWater int64
}

// Utilization is the GPU core utilization the paper plots in Figure 7(g):
// kernel-busy time over timeline makespan.
func (s Stats) Utilization() float64 {
	if s.Makespan == 0 {
		return 0
	}
	u := s.KernelBusy / s.Makespan
	if u > 1 {
		u = 1
	}
	return u
}

// PCIEBytes is the total bus traffic.
func (s Stats) PCIEBytes() int64 { return s.H2DBytes + s.D2HBytes }

// String summarizes the stats.
func (s Stats) String() string {
	return fmt.Sprintf("gpu{h2d=%d d2h=%d kernels=%d iters=%d util=%.1f%%}",
		s.H2DBytes, s.D2HBytes, s.Kernels, s.Iterations, 100*s.Utilization())
}

// Device accumulates Stats from concurrently running tasks. Each task runs
// its own deterministic virtual timeline (its MPS slice); the device merges
// the results under a lock.
//
// With SetSharedBus(true) the device instead models true MPS bus
// contention: all tasks' H2D/D2H copies serialize on ONE copy engine (the
// physical PCI-E link), so concurrent tasks queue behind each other — the
// "serious shortage" situation §4.1 describes when multiple tasks use the
// same GPU simultaneously. The default partitioned model (each task gets a
// 1/Tc bandwidth slice) is deterministic regardless of task scheduling;
// the shared model serializes in task-arrival order, so runs are
// deterministic only under deterministic scheduling.
type Device struct {
	spec Spec

	mu         sync.Mutex
	stats      Stats
	sharedBus  bool
	bus        vclock.SerialResource
	traceLimit int
	trace      []TraceEvent
	taskSeq    int
}

// SetSharedBus switches between the partitioned-bandwidth model (false,
// default) and the contended single-bus model (true).
func (d *Device) SetSharedBus(on bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.sharedBus = on
	d.bus.Reset()
}

// busCopy books one copy on the contended shared bus; valid only when
// sharedBus is on.
func (d *Device) busCopy(ready vclock.Time, dur float64) (vclock.Time, vclock.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bus.Schedule(ready, dur)
}

// usesSharedBus reports the current bus model.
func (d *Device) usesSharedBus() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sharedBus
}

// NewDevice creates a device with the given per-task spec.
func NewDevice(spec Spec) *Device {
	if spec.MaxStreams <= 0 {
		spec.MaxStreams = 32
	}
	if spec.PCIEBandwidth <= 0 {
		spec.PCIEBandwidth = 12e9
	}
	if spec.Flops <= 0 {
		spec.Flops = 300e9
	}
	return &Device{spec: spec}
}

// Spec returns the device's per-task spec.
func (d *Device) Spec() Spec { return d.spec }

// Stats returns a snapshot of the accumulated statistics.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the accumulated statistics.
func (d *Device) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
}

// merge folds one task timeline's observations into the device totals.
func (d *Device) merge(t *taskTimeline) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.recordTrace(d.taskSeq, t.events)
	d.taskSeq++
	d.stats.H2DBytes += t.h2dBytes
	d.stats.D2HBytes += t.d2hBytes
	d.stats.KernelBusy += t.kernels.BusyTime()
	d.stats.Makespan += float64(vclock.Max(vclock.Max(t.kernels.Makespan(), t.copyEngine.FreeAt()), t.busEnd))
	d.stats.Kernels += t.kernelCount
	d.stats.Iterations += t.iterations
	if t.memHighWater > d.stats.MemHighWater {
		d.stats.MemHighWater = t.memHighWater
	}
}

// taskTimeline is one task's private virtual timeline on its MPS slice of
// the device: a serialized copy engine, per-stream kernel queues, and
// device-memory accounting.
type taskTimeline struct {
	spec       Spec
	device     *Device // for the shared-bus contention model; may be nil
	copyEngine vclock.SerialResource
	streams    []vclock.SerialResource
	kernels    vclock.IntervalSet

	h2dBytes, d2hBytes int64
	kernelCount        int
	iterations         int
	memInUse           int64
	memHighWater       int64
	busEnd             vclock.Time // latest shared-bus completion seen
	events             []TraceEvent
}

func newTaskTimeline(spec Spec, streams int) *taskTimeline {
	if streams < 1 {
		streams = 1
	}
	if streams > spec.MaxStreams {
		streams = spec.MaxStreams
	}
	return &taskTimeline{spec: spec, streams: make([]vclock.SerialResource, streams)}
}

// copy books one transfer of duration dur becoming ready at ready, on the
// per-task engine or the device's contended bus depending on the model.
func (t *taskTimeline) copy(ready vclock.Time, dur float64) (vclock.Time, vclock.Time) {
	if t.device != nil && t.device.usesSharedBus() {
		start, end := t.device.busCopy(ready, dur)
		if end > t.busEnd {
			t.busEnd = end
		}
		return start, end
	}
	return t.copyEngine.Schedule(ready, dur)
}

// tracing reports whether the owning device records events.
func (t *taskTimeline) tracing() bool {
	if t.device == nil {
		return false
	}
	t.device.mu.Lock()
	defer t.device.mu.Unlock()
	return t.device.traceLimit > 0
}

// alloc charges device memory; it fails when the working set passes θg.
func (t *taskTimeline) alloc(n int64) error {
	t.memInUse += n
	if t.memInUse > t.memHighWater {
		t.memHighWater = t.memInUse
	}
	if t.spec.MemPerTaskBytes > 0 && t.memInUse > t.spec.MemPerTaskBytes {
		return fmt.Errorf("%w: in use %d, budget %d", ErrDeviceOutOfMemory, t.memInUse, t.spec.MemPerTaskBytes)
	}
	return nil
}

// free releases device memory.
func (t *taskTimeline) free(n int64) { t.memInUse -= n }

// h2d books a host-to-device copy of n bytes that becomes ready at `ready`,
// returning its completion time. Copies are serialized on the copy engine —
// "H2D copies of these streams cannot overlap with each other" (§4.3).
func (t *taskTimeline) h2d(ready vclock.Time, n int64, label string) vclock.Time {
	t.h2dBytes += n
	start, end := t.copy(ready, float64(n)/t.spec.PCIEBandwidth)
	if t.tracing() {
		t.events = append(t.events, TraceEvent{Stream: -1, Kind: "h2d", Label: label, Start: start, End: end, Bytes: n})
	}
	return end
}

// d2h books a device-to-host copy of n bytes on the same serialized engine.
func (t *taskTimeline) d2h(ready vclock.Time, n int64, label string) vclock.Time {
	t.d2hBytes += n
	start, end := t.copy(ready, float64(n)/t.spec.PCIEBandwidth)
	if t.tracing() {
		t.events = append(t.events, TraceEvent{Stream: -1, Kind: "d2h", Label: label, Start: start, End: end, Bytes: n})
	}
	return end
}

// kernel books a kernel of the given flop count on stream s, ready when its
// inputs are; kernels on different streams overlap freely.
func (t *taskTimeline) kernel(stream int, ready vclock.Time, flops float64, label string) vclock.Time {
	s := &t.streams[stream%len(t.streams)]
	start, end := s.Schedule(ready, flops/t.spec.Flops+t.spec.KernelLaunchOverhead)
	t.kernels.Add(start, end)
	t.kernelCount++
	if t.tracing() {
		t.events = append(t.events, TraceEvent{Stream: stream % len(t.streams), Kind: "kernel", Label: label, Start: start, End: end, Flops: flops})
	}
	return end
}
