package gpu

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"distme/internal/bmat"
	"distme/internal/core"
	"distme/internal/matrix"
	"distme/internal/metrics"
)

// testSpec is a small, deterministic device for unit tests.
func testSpec(mem int64) Spec {
	return Spec{
		MemPerTaskBytes:      mem,
		PCIEBandwidth:        1e6, // 1 MB/s: transfers visibly dominate
		Flops:                1e8,
		MaxStreams:           8,
		KernelLaunchOverhead: 0,
	}
}

// fullCuboid wraps a whole multiplication as a single cuboid.
func fullCuboid(a, b *bmat.BlockMatrix) *core.Cuboid {
	return &core.Cuboid{
		ILo: 0, IHi: a.IB, JLo: 0, JHi: b.JB, KLo: 0, KHi: a.JB,
		A: a, B: b,
	}
}

func TestGPUMultiplyMatchesCPU(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	a := bmat.RandomDense(rng, 16, 12, 4)
	b := bmat.RandomDense(rng, 12, 8, 4)
	c := fullCuboid(a, b)

	cpu, err := core.CPUMultiplier{}.Multiply(c)
	if err != nil {
		t.Fatal(err)
	}
	g := NewMultiplier(testSpec(1<<20), nil)
	got, err := g.Multiply(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cpu) {
		t.Fatalf("GPU produced %d blocks, CPU %d", len(got), len(cpu))
	}
	for k, want := range cpu {
		if !got[k].EqualApprox(want, 1e-9) {
			t.Fatalf("block %v differs", k)
		}
	}
}

// TestGPUStreamedEqualsUnstreamedProperty: forcing tiny θg (many subcuboid
// iterations) must not change the result — the C-resident accumulation is
// exact.
func TestGPUStreamedEqualsUnstreamedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bs := 2 + rng.Intn(3)
		m, k, n := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		var a *bmat.BlockMatrix
		if rng.Intn(2) == 0 {
			a = bmat.RandomDense(rng, m, k, bs)
		} else {
			a = bmat.RandomSparse(rng, m, k, bs, 0.5)
		}
		b := bmat.RandomDense(rng, k, n, bs)
		c := fullCuboid(a, b)
		cpu, _ := core.CPUMultiplier{}.Multiply(c)

		// Tight device: barely one voxel's working set.
		voxelBytes := int64(3 * bs * bs * 8)
		g := NewMultiplier(testSpec(4*voxelBytes), nil)
		got, err := g.Multiply(c)
		if err != nil {
			// Genuinely too small is acceptable only if even a voxel
			// exceeds the budget, which testSpec avoids.
			return false
		}
		if len(got) != len(cpu) {
			return false
		}
		for key, want := range cpu {
			if !got[key].EqualApprox(want, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGPUMemoryHighWaterWithinBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	a := bmat.RandomDense(rng, 24, 24, 4)
	b := bmat.RandomDense(rng, 24, 24, 4)
	θ := int64(4 * 1024)
	g := NewMultiplier(testSpec(θ), nil)
	if _, err := g.Multiply(fullCuboid(a, b)); err != nil {
		t.Fatal(err)
	}
	st := g.Device.Stats()
	if st.MemHighWater > θ {
		t.Fatalf("device high water %d exceeds θg %d", st.MemHighWater, θ)
	}
	if st.Iterations < 2 {
		t.Fatalf("tight budget should force multiple iterations, got %d", st.Iterations)
	}
}

// TestGPUPCIETrafficMatchesEq6 checks the bus accounting against Eq.(6) on
// an exactly divisible cuboid: Q2·|A| + P2·|B| H2D plus |C| D2H.
func TestGPUPCIETrafficMatchesEq6(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	a := bmat.RandomDense(rng, 16, 16, 4) // 4×4 blocks, 128 B each… (4×4×8=128)
	b := bmat.RandomDense(rng, 16, 16, 4)
	c := fullCuboid(a, b)
	sh := c.Shape()

	// Budget admits (1,1,2): per-iteration = |A|/2 + |B|/2 + |C|.
	perIter := sh.ABytes/2 + sh.BBytes/2 + sh.CBytes
	rec := &metrics.Recorder{}
	g := NewMultiplier(testSpec(perIter), rec)
	if _, err := g.Multiply(c); err != nil {
		t.Fatal(err)
	}
	st := g.Device.Stats()
	if st.H2DBytes != sh.ABytes+sh.BBytes {
		t.Fatalf("H2D = %d, want |A|+|B| = %d", st.H2DBytes, sh.ABytes+sh.BBytes)
	}
	if st.D2HBytes != sh.CBytes {
		t.Fatalf("D2H = %d, want |C| = %d", st.D2HBytes, sh.CBytes)
	}
	if rec.Bytes(metrics.StepPCIE) != st.PCIEBytes() {
		t.Fatal("recorder PCI-E bytes disagree with device stats")
	}
}

// TestGPUCResidencySavesTraffic: splitting along k (R2 grows) must not grow
// C traffic — the buffer stays resident — while splitting along j (Q2) must
// re-send A.
func TestGPUCResidencySavesTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	a := bmat.RandomDense(rng, 8, 32, 4) // A dominates
	b := bmat.RandomDense(rng, 32, 8, 4)
	c := fullCuboid(a, b)
	sh := c.Shape()

	run := func(θ int64) Stats {
		g := NewMultiplier(testSpec(θ), nil)
		if _, err := g.Multiply(c); err != nil {
			t.Fatal(err)
		}
		return g.Device.Stats()
	}
	// Loose: everything fits, one iteration.
	loose := run(sh.ABytes + sh.BBytes + sh.CBytes)
	// Tight on k: forces R2 > 1 but C still fits.
	tight := run(sh.CBytes + (sh.ABytes+sh.BBytes)/4)

	if loose.D2HBytes != tight.D2HBytes {
		t.Fatalf("k-axis splitting changed C traffic: %d vs %d", loose.D2HBytes, tight.D2HBytes)
	}
	if tight.Iterations <= loose.Iterations {
		t.Fatal("tight budget should stream more subcuboids")
	}
	if tight.H2DBytes != loose.H2DBytes {
		t.Fatalf("pure k-split with (1,1,R2) should not replicate inputs: %d vs %d", tight.H2DBytes, loose.H2DBytes)
	}
}

func TestGPUUtilizationBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	a := bmat.RandomDense(rng, 16, 16, 4)
	b := bmat.RandomDense(rng, 16, 16, 4)
	g := NewMultiplier(testSpec(1<<20), nil)
	if _, err := g.Multiply(fullCuboid(a, b)); err != nil {
		t.Fatal(err)
	}
	u := g.Device.Stats().Utilization()
	if u <= 0 || u > 1 {
		t.Fatalf("utilization %g outside (0, 1]", u)
	}
}

// TestGPUComputeBoundVsCopyBoundUtilization reproduces the qualitative
// behavior behind Figure 7(g): a compute-heavy device setup (fast bus, slow
// cores) is busier than a copy-bound one (slow bus, fast cores).
func TestGPUComputeBoundVsCopyBoundUtilization(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	a := bmat.RandomDense(rng, 16, 16, 4)
	b := bmat.RandomDense(rng, 16, 16, 4)
	c := fullCuboid(a, b)

	compute := testSpec(1 << 20)
	compute.PCIEBandwidth = 1e9
	compute.Flops = 1e6
	gc := NewMultiplier(compute, nil)
	if _, err := gc.Multiply(c); err != nil {
		t.Fatal(err)
	}

	copybound := testSpec(1 << 20)
	copybound.PCIEBandwidth = 1e3
	copybound.Flops = 1e12
	gb := NewMultiplier(copybound, nil)
	if _, err := gb.Multiply(c); err != nil {
		t.Fatal(err)
	}

	if gc.Device.Stats().Utilization() <= gb.Device.Stats().Utilization() {
		t.Fatalf("compute-bound utilization %g should exceed copy-bound %g",
			gc.Device.Stats().Utilization(), gb.Device.Stats().Utilization())
	}
}

func TestGPUInfeasibleCuboid(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	a := bmat.RandomDense(rng, 4, 4, 4)
	b := bmat.RandomDense(rng, 4, 4, 4)
	g := NewMultiplier(testSpec(16), nil) // 16 bytes: even one voxel fails
	_, err := g.Multiply(fullCuboid(a, b))
	if !errors.Is(err, core.ErrInfeasible) && !errors.Is(err, ErrDeviceOutOfMemory) {
		t.Fatalf("err = %v, want infeasible/ErrDeviceOutOfMemory", err)
	}
}

func TestBlockLevelMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	a := matrix.RandomDense(rng, 6, 8)
	b := matrix.RandomDense(rng, 8, 5)
	rec := &metrics.Recorder{}
	bl := &BlockLevel{Device: NewDevice(testSpec(1 << 20)), Recorder: rec}
	got, err := bl.MultiplyPair(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.Mul(a, b).Dense()
	if !got.EqualApprox(want, 1e-9) {
		t.Fatal("block-level product wrong")
	}
	// Per-voxel path pays D2H of C every time — no residency.
	st := bl.Device.Stats()
	if st.D2HBytes != 6*5*8 {
		t.Fatalf("D2H = %d, want 240", st.D2HBytes)
	}
	if rec.Bytes(metrics.StepPCIE) != st.PCIEBytes() {
		t.Fatal("recorder mismatch")
	}
}

// TestBlockLevelLowerUtilizationThanStreamed shows the RMM handicap the
// paper describes: block-level GPU use cannot hide copies behind kernels.
func TestBlockLevelLowerUtilizationThanStreamed(t *testing.T) {
	rng := rand.New(rand.NewSource(68))
	a := bmat.RandomDense(rng, 16, 16, 4)
	b := bmat.RandomDense(rng, 16, 16, 4)

	spec := testSpec(1 << 20)
	streamed := NewMultiplier(spec, nil)
	if _, err := streamed.Multiply(fullCuboid(a, b)); err != nil {
		t.Fatal(err)
	}

	bl := &BlockLevel{Device: NewDevice(spec)}
	for i := 0; i < a.IB; i++ {
		for j := 0; j < b.JB; j++ {
			for k := 0; k < a.JB; k++ {
				if _, err := bl.MultiplyPair(a.Block(i, k), b.Block(k, j)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if bl.Device.Stats().PCIEBytes() <= streamed.Device.Stats().PCIEBytes() {
		t.Fatal("block-level path should move more PCI-E data than streamed path")
	}
	if bl.Device.Stats().Utilization() >= streamed.Device.Stats().Utilization() {
		t.Fatalf("block-level utilization %g should be below streamed %g",
			bl.Device.Stats().Utilization(), streamed.Device.Stats().Utilization())
	}
}

func TestDeviceStatsReset(t *testing.T) {
	d := NewDevice(testSpec(1 << 20))
	tl := newTaskTimeline(d.Spec(), 2)
	tl.h2d(0, 100, "x")
	d.merge(tl)
	if d.Stats().H2DBytes != 100 {
		t.Fatal("merge lost bytes")
	}
	d.ResetStats()
	if d.Stats() != (Stats{}) {
		t.Fatal("ResetStats left residue")
	}
}

func TestPaperSpecValues(t *testing.T) {
	s := PaperSpec()
	if s.MemPerTaskBytes != 1e9 {
		t.Fatalf("θg = %d, want 1 GB", s.MemPerTaskBytes)
	}
	if s.MaxStreams != 32 {
		t.Fatalf("MaxStreams = %d, want 32", s.MaxStreams)
	}
}

func TestStatsUtilizationEdge(t *testing.T) {
	if (Stats{}).Utilization() != 0 {
		t.Fatal("empty stats utilization should be 0")
	}
	s := Stats{KernelBusy: 2, Makespan: 1}
	if s.Utilization() != 1 {
		t.Fatal("utilization must clamp to 1")
	}
}

func TestSharedBusContentionLowersUtilization(t *testing.T) {
	rng := rand.New(rand.NewSource(69))
	a := bmat.RandomDense(rng, 16, 16, 4)
	b := bmat.RandomDense(rng, 16, 16, 4)
	c := fullCuboid(a, b)

	// Partitioned model: each of 4 sequential tasks gets a private slice.
	part := NewMultiplier(testSpec(1<<20), nil)
	for i := 0; i < 4; i++ {
		if _, err := part.Multiply(c); err != nil {
			t.Fatal(err)
		}
	}

	// Shared model: the same 4 tasks queue on one physical bus.
	shared := NewMultiplier(testSpec(1<<20), nil)
	shared.Device.SetSharedBus(true)
	for i := 0; i < 4; i++ {
		if _, err := shared.Multiply(c); err != nil {
			t.Fatal(err)
		}
	}

	pu := part.Device.Stats().Utilization()
	su := shared.Device.Stats().Utilization()
	if su >= pu {
		t.Fatalf("contended bus utilization (%.3f) should fall below partitioned (%.3f)", su, pu)
	}
	// Contention must not change the arithmetic.
	got, err := shared.Multiply(c)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := core.CPUMultiplier{}.Multiply(c)
	for k, w := range want {
		if !got[k].EqualApprox(w, 1e-9) {
			t.Fatal("shared-bus run changed the product")
		}
	}
}

func TestSharedBusSingleTaskUnaffectedBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(68))
	a := bmat.RandomDense(rng, 8, 8, 4)
	b := bmat.RandomDense(rng, 8, 8, 4)
	c := fullCuboid(a, b)

	part := NewMultiplier(testSpec(1<<20), nil)
	if _, err := part.Multiply(c); err != nil {
		t.Fatal(err)
	}
	shared := NewMultiplier(testSpec(1<<20), nil)
	shared.Device.SetSharedBus(true)
	if _, err := shared.Multiply(c); err != nil {
		t.Fatal(err)
	}
	if part.Device.Stats().PCIEBytes() != shared.Device.Stats().PCIEBytes() {
		t.Fatal("bus model must not change traffic volume")
	}
}

func TestTraceReproducesFigure5Timeline(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	// Figure 5's setting: a cuboid with multiple k-subcuboids streamed on
	// per-j streams with the C buffer resident.
	a := bmat.RandomDense(rng, 8, 32, 4)
	b := bmat.RandomDense(rng, 32, 12, 4)
	c := fullCuboid(a, b)
	sh := c.Shape()

	g := NewMultiplier(testSpec(sh.CBytes+(sh.ABytes+sh.BBytes)/4), nil)
	g.Device.EnableTrace(4096)
	if _, err := g.Multiply(c); err != nil {
		t.Fatal(err)
	}
	events := g.Device.Trace()
	if len(events) == 0 {
		t.Fatal("trace empty")
	}
	var h2d, kernels, d2h int
	var prevCopyEnd float64
	for _, ev := range events {
		switch ev.Kind {
		case "h2d":
			h2d++
			// Copies are serialized: each starts no earlier than the
			// previous copy ended (§4.3's non-overlapping H2D).
			if float64(ev.Start) < prevCopyEnd-1e-12 {
				t.Fatalf("copy %s overlaps the previous one", ev.Label)
			}
			prevCopyEnd = float64(ev.End)
		case "kernel":
			kernels++
		case "d2h":
			d2h++
			prevCopyEnd = float64(ev.End)
		}
		if ev.End < ev.Start {
			t.Fatalf("event %s ends before it starts", ev.Label)
		}
	}
	if h2d == 0 || kernels == 0 || d2h == 0 {
		t.Fatalf("trace missing event kinds: h2d=%d kernels=%d d2h=%d", h2d, kernels, d2h)
	}
	// C' crosses the bus exactly once per (p2, q2) column.
	if d2h != 1 {
		t.Fatalf("C buffer copied back %d times, want 1 (residency)", d2h)
	}
	if s := FormatTrace(events[:10]); s == "" {
		t.Fatal("trace should render")
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	a := bmat.RandomDense(rng, 8, 8, 4)
	b := bmat.RandomDense(rng, 8, 8, 4)
	g := NewMultiplier(testSpec(1<<20), nil)
	if _, err := g.Multiply(fullCuboid(a, b)); err != nil {
		t.Fatal(err)
	}
	if len(g.Device.Trace()) != 0 {
		t.Fatal("trace recorded without EnableTrace")
	}
}

func TestTraceLimitRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	a := bmat.RandomDense(rng, 16, 16, 4)
	b := bmat.RandomDense(rng, 16, 16, 4)
	g := NewMultiplier(testSpec(1<<20), nil)
	g.Device.EnableTrace(5)
	if _, err := g.Multiply(fullCuboid(a, b)); err != nil {
		t.Fatal(err)
	}
	if n := len(g.Device.Trace()); n > 5 {
		t.Fatalf("trace holds %d events, limit 5", n)
	}
}
