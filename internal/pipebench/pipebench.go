// Package pipebench measures what the resident-handle pipeline exists to
// deliver: warm iterations of an iterative algorithm moving a fraction of
// the driver traffic that materialize-every-op execution moves, with
// byte-identical results. It starts an in-process cluster of real TCP
// workers, runs GNMF and a PageRank spread step both ways, and reports the
// per-iteration driver bytes, wall time, and the resident/materialized
// ratio. distme-bench -pipeline renders the report and writes
// BENCH_pipeline.json; the run fails if any workload's warm ratio drops
// below MinRatio or any result diverges bitwise.
package pipebench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"os"
	"time"

	"distme/internal/bmat"
	"distme/internal/distnet"
	"distme/internal/ml"
	"distme/internal/plan"
)

// MinRatio is the acceptance bar: a warm resident iteration must move at
// least this many times fewer bytes through the driver than the
// materialized baseline.
const MinRatio = 5.0

// Row is one workload's measurement.
type Row struct {
	Workload string `json:"workload"`
	// Warm per-iteration driver traffic (bytes sent + received by the
	// driver), averaged over the measured iterations.
	ResidentDriverBytes     int64 `json:"resident_driver_bytes"`
	MaterializedDriverBytes int64 `json:"materialized_driver_bytes"`
	// Ratio is materialized / resident driver bytes — higher is better.
	Ratio float64 `json:"ratio"`
	// Warm per-iteration wall time, averaged.
	ResidentNanos     int64 `json:"resident_ns"`
	MaterializedNanos int64 `json:"materialized_ns"`
	// BitIdentical reports whether the resident result equals the
	// materialized result float64-bit for float64-bit.
	BitIdentical bool `json:"bit_identical"`
	Iterations   int  `json:"iterations"`
}

// Report is the full pipeline benchmark output.
type Report struct {
	Workers            int     `json:"workers"`
	MinRatio           float64 `json:"min_ratio"`
	DriverBytesAvoided int64   `json:"driver_bytes_avoided"`
	Rows               []Row   `json:"rows"`
}

// cluster is the in-process harness: real TCP workers, heartbeats off so
// the run is deterministic.
type cluster struct {
	workers []*distnet.Worker
	driver  *distnet.Driver
}

func startCluster(n int) (*cluster, error) {
	c := &cluster{}
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			c.close()
			return nil, err
		}
		w, err := distnet.ServeOptions(l, distnet.WorkerOptions{})
		if err != nil {
			c.close()
			return nil, err
		}
		c.workers = append(c.workers, w)
		addrs = append(addrs, l.Addr().String())
	}
	d, err := distnet.DialOptions(addrs, distnet.Options{
		DisableHeartbeat: true,
		CallTimeout:      30 * time.Second,
	})
	if err != nil {
		c.close()
		return nil, err
	}
	c.driver = d
	return c, nil
}

func (c *cluster) close() {
	if c.driver != nil {
		c.driver.Close()
	}
	for _, w := range c.workers {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		w.Shutdown(ctx)
		cancel()
	}
}

// driverBytes is the total driver-routed traffic so far.
func (c *cluster) driverBytes() int64 {
	sent, recv := c.driver.WireBytes()
	return sent + recv
}

func bitEqual(a, b *bmat.BlockMatrix) bool {
	x, y := a.ToDense(), b.ToDense()
	xr, xc := x.Dims()
	yr, yc := y.Dims()
	if xr != yr || xc != yc {
		return false
	}
	for i := range x.Data {
		if math.Float64bits(x.Data[i]) != math.Float64bits(y.Data[i]) {
			return false
		}
	}
	return true
}

// Run executes the pipeline benchmark on a fresh in-process cluster.
func Run() (*Report, error) {
	const workers = 3
	c, err := startCluster(workers)
	if err != nil {
		return nil, err
	}
	defer c.close()

	r := &Report{Workers: workers, MinRatio: MinRatio}

	gnmf, err := benchGNMF(c)
	if err != nil {
		return nil, fmt.Errorf("pipebench: gnmf: %w", err)
	}
	r.Rows = append(r.Rows, *gnmf)

	pr, err := benchPageRankSpread(c)
	if err != nil {
		return nil, fmt.Errorf("pipebench: pagerank: %w", err)
	}
	r.Rows = append(r.Rows, *pr)

	r.DriverBytesAvoided = c.driver.NetStats().DriverBytesAvoided

	for _, row := range r.Rows {
		if !row.BitIdentical {
			return r, fmt.Errorf("pipebench: %s: resident result not bit-identical to materialized", row.Workload)
		}
		if row.Ratio < MinRatio {
			return r, fmt.Errorf("pipebench: %s: warm driver-byte ratio %.1f below the %.0f× bar", row.Workload, row.Ratio, MinRatio)
		}
	}
	return r, nil
}

// benchGNMF runs GNMF both ways: the handle pipeline keeps V, W, H resident
// (V uploads once); the baseline re-uploads every operand and fetches every
// intermediate through the driver each iteration.
func benchGNMF(c *cluster) (*Row, error) {
	const (
		n, m, rank = 96, 80, 8
		bs         = 8
		seed       = 17
		warmup     = 1
		measured   = 3
	)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(1))
	v := bmat.RandomSparse(rng, n, m, bs, 0.3)
	opt := ml.GNMFOptions{Rank: rank, Seed: seed}

	// Resident: one session, factors live on the workers across steps.
	sess, err := c.driver.NewSession(ctx)
	if err != nil {
		return nil, err
	}
	defer sess.Close(ctx)
	pipe, err := ml.NewGNMFPipeline[*distnet.Handle](ctx, sess, v, opt)
	if err != nil {
		return nil, err
	}
	defer pipe.Close(ctx)
	for i := 0; i < warmup; i++ {
		if err := pipe.Step(ctx); err != nil {
			return nil, err
		}
	}
	resBytes0, resT0 := c.driverBytes(), time.Now()
	for i := 0; i < measured; i++ {
		if err := pipe.Step(ctx); err != nil {
			return nil, err
		}
	}
	resNanos := time.Since(resT0).Nanoseconds()
	resBytes := c.driverBytes() - resBytes0
	resident, err := pipe.Factors(ctx)
	if err != nil {
		return nil, err
	}

	// Materialized twin: same seed, same expressions, every operator's
	// inputs up and output back through the driver.
	initRng := rand.New(rand.NewSource(seed))
	w := bmat.RandomDense(initRng, n, rank, bs)
	h := bmat.RandomDense(initRng, rank, m, bs)
	hx, wx := ml.GNMFHExpr(), ml.GNMFWExpr()
	step := func() error {
		binds := map[string]*bmat.BlockMatrix{"v": v, "w": w, "h": h}
		nh, err := sess.RunMaterialized(ctx, hx, binds)
		if err != nil {
			return err
		}
		h = nh
		binds["h"] = h
		nw, err := sess.RunMaterialized(ctx, wx, binds)
		if err != nil {
			return err
		}
		w = nw
		return nil
	}
	for i := 0; i < warmup; i++ {
		if err := step(); err != nil {
			return nil, err
		}
	}
	matBytes0, matT0 := c.driverBytes(), time.Now()
	for i := 0; i < measured; i++ {
		if err := step(); err != nil {
			return nil, err
		}
	}
	matNanos := time.Since(matT0).Nanoseconds()
	matBytes := c.driverBytes() - matBytes0

	return &Row{
		Workload:                "gnmf",
		Iterations:              measured,
		ResidentDriverBytes:     resBytes / measured,
		MaterializedDriverBytes: matBytes / measured,
		Ratio:                   ratio(matBytes, resBytes),
		ResidentNanos:           resNanos / measured,
		MaterializedNanos:       matNanos / measured,
		BitIdentical:            bitEqual(resident.W, w) && bitEqual(resident.H, h),
	}, nil
}

// benchPageRankSpread measures the iteration kernel of PageRank — the
// spread multiply Mᵀ·r. Resident: the n×n transition matrix uploads once
// and stays pinned; per iteration only the n×1 rank vector goes up and the
// n×1 spread comes down. Materialized: Mᵀ re-crosses the driver every
// iteration.
func benchPageRankSpread(c *cluster) (*Row, error) {
	const (
		n        = 120
		bs       = 8
		warmup   = 1
		measured = 3
	)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(2))
	mt := bmat.RandomSparse(rng, n, n, bs, 0.2)
	r := bmat.RandomDense(rng, n, 1, bs)
	expr := plan.Mul(plan.V("mt"), plan.V("r"))

	sess, err := c.driver.NewSession(ctx)
	if err != nil {
		return nil, err
	}
	defer sess.Close(ctx)
	hmt, err := sess.Put(ctx, mt)
	if err != nil {
		return nil, err
	}
	if err := sess.Pin(ctx, hmt); err != nil {
		return nil, err
	}

	residentStep := func() (*bmat.BlockMatrix, error) {
		hr, err := sess.Put(ctx, r)
		if err != nil {
			return nil, err
		}
		hs, err := sess.Run(ctx, expr, map[string]*distnet.Handle{"mt": hmt, "r": hr})
		if err != nil {
			return nil, err
		}
		spread, err := sess.Fetch(ctx, hs)
		if err != nil {
			return nil, err
		}
		_ = sess.Free(ctx, hs)
		_ = sess.Free(ctx, hr)
		return spread, nil
	}
	var resSpread *bmat.BlockMatrix
	for i := 0; i < warmup; i++ {
		if _, err := residentStep(); err != nil {
			return nil, err
		}
	}
	resBytes0, resT0 := c.driverBytes(), time.Now()
	for i := 0; i < measured; i++ {
		if resSpread, err = residentStep(); err != nil {
			return nil, err
		}
	}
	resNanos := time.Since(resT0).Nanoseconds()
	resBytes := c.driverBytes() - resBytes0

	binds := map[string]*bmat.BlockMatrix{"mt": mt, "r": r}
	var matSpread *bmat.BlockMatrix
	for i := 0; i < warmup; i++ {
		if _, err := sess.RunMaterialized(ctx, expr, binds); err != nil {
			return nil, err
		}
	}
	matBytes0, matT0 := c.driverBytes(), time.Now()
	for i := 0; i < measured; i++ {
		if matSpread, err = sess.RunMaterialized(ctx, expr, binds); err != nil {
			return nil, err
		}
	}
	matNanos := time.Since(matT0).Nanoseconds()
	matBytes := c.driverBytes() - matBytes0

	return &Row{
		Workload:                "pagerank-spread",
		Iterations:              measured,
		ResidentDriverBytes:     resBytes / measured,
		MaterializedDriverBytes: matBytes / measured,
		Ratio:                   ratio(matBytes, resBytes),
		ResidentNanos:           resNanos / measured,
		MaterializedNanos:       matNanos / measured,
		BitIdentical:            bitEqual(resSpread, matSpread),
	}, nil
}

func ratio(mat, res int64) float64 {
	if res == 0 {
		return math.Inf(1)
	}
	return float64(mat) / float64(res)
}

// WriteJSON writes the report to a file.
func (r *Report) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Fprint renders the report as a table.
func (r *Report) Fprint(w io.Writer) {
	fmt.Fprintf(w, "pipeline benchmark: %d workers, %d iterations warm, bar %.0fx\n", r.Workers, r.Rows[0].Iterations, r.MinRatio)
	fmt.Fprintf(w, "%-18s %14s %14s %8s %12s %12s %6s\n",
		"workload", "resident B/it", "material B/it", "ratio", "resident/it", "material/it", "exact")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-18s %14d %14d %7.1fx %12s %12s %6v\n",
			row.Workload, row.ResidentDriverBytes, row.MaterializedDriverBytes, row.Ratio,
			time.Duration(row.ResidentNanos), time.Duration(row.MaterializedNanos), row.BitIdentical)
	}
	fmt.Fprintf(w, "driver bytes avoided (whole run, optimizer estimate): %d\n", r.DriverBytesAvoided)
}
