// Package cluster is the distributed data-parallel substrate that DistME is
// built on — the stand-in for Apache Spark in the paper. It provides a
// simulated cluster of M nodes with Tc concurrent task slots per node, a
// per-task memory budget θt that is enforced (reproducing the paper's
// O.O.M. failures), a disk-capacity budget (reproducing E.D.C.), and a
// byte-metered view of the network. Tasks run for real, in parallel, on
// worker goroutines; only the hardware envelope is simulated.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"time"

	"distme/internal/metrics"
)

// ErrOutOfMemory reports that a task's working set exceeded the per-task
// memory budget θt — the paper's "O.O.M." outcome.
var ErrOutOfMemory = errors.New("cluster: task exceeds per-task memory budget (O.O.M.)")

// ErrExceededDisk reports that intermediate data exceeded cluster disk
// capacity — the paper's "E.D.C." outcome.
var ErrExceededDisk = errors.New("cluster: intermediate data exceeds disk capacity (E.D.C.)")

// ErrTimeout reports that a job exceeded the experiment's time budget — the
// paper's "T.O." outcome.
var ErrTimeout = errors.New("cluster: job exceeded time budget (T.O.)")

// Config describes the simulated hardware envelope. The zero value is not
// usable; construct with NewConfig or start from PaperConfig.
type Config struct {
	// Nodes is M, the number of cluster nodes.
	Nodes int
	// TasksPerNode is Tc, the number of concurrent tasks per node.
	TasksPerNode int
	// TaskMemBytes is θt, the memory budget of a single task.
	TaskMemBytes int64
	// NodeMemBytes is the total memory of one node (64 GB in the paper's
	// testbed); broadcast variables are node-resident and shared by the
	// node's Tc tasks, so they are checked against this budget, not θt.
	NodeMemBytes int64
	// GPUMemPerTaskBytes is θg, the GPU memory available to one task when
	// Tc tasks share one node device through MPS.
	GPUMemPerTaskBytes int64
	// GPUsPerNode is the device count per node (1 in the paper's testbed;
	// >1 engages the multi-GPU extension of §8's future work: each task's
	// MPS share of memory, bus and cores scales with the device count).
	GPUsPerNode int
	// NetworkBandwidth is the per-node network bandwidth in bytes/second,
	// used by the cost model (10 Gbps in the paper's testbed).
	NetworkBandwidth float64
	// PCIEBandwidth is the host↔device bandwidth in bytes/second
	// (16 GB/s peak in the paper; the testbed's effective rate is lower).
	PCIEBandwidth float64
	// DiskCapacityBytes is the total cluster disk capacity available to
	// shuffle spills (36 TB in the paper's testbed).
	DiskCapacityBytes int64
	// CPUFlops is the per-node double-precision CPU throughput used by the
	// cost model (flop/s).
	CPUFlops float64
	// GPUFlops is the per-node double-precision GPU throughput used by the
	// cost model (flop/s).
	GPUFlops float64
	// LocalWorkers bounds the real goroutine parallelism of measured runs;
	// 0 means GOMAXPROCS.
	LocalWorkers int
	// TaskRetries is how many times a failed task is re-executed before its
	// error fails the job — the substrate's analog of Spark re-running lost
	// tasks from RDD lineage. 0 means no retries.
	TaskRetries int
	// RetryBackoff is the base delay of the capped exponential backoff
	// between a task's attempts (1ms when zero). Attempt n waits
	// min(RetryBackoff·2ⁿ⁻¹, RetryBackoffCap).
	RetryBackoff time.Duration
	// RetryBackoffCap caps the exponential backoff (16·RetryBackoff when
	// zero).
	RetryBackoffCap time.Duration
	// RetryJitterSeed pins the full-jitter source applied to retry backoff
	// (the actual delay before retry n is uniform in (0, backoff]); 0 seeds
	// from the clock. Jitter changes only retry timing — results stay
	// bit-identical under any seed — but a pinned seed keeps schedules
	// reproducible in tests.
	RetryJitterSeed int64
	// Speculation enables speculative copies of straggler tasks: once
	// SpeculationQuantile of a wave has completed, a task in flight for
	// longer than SpeculationMultiplier × the quantile completion time
	// gets a second attempt; the first result wins and the loser is
	// cancelled.
	Speculation bool
	// SpeculationQuantile is the completed fraction of the wave required
	// before stragglers are considered (0.75 when zero).
	SpeculationQuantile float64
	// SpeculationMultiplier scales the quantile completion time into the
	// straggler threshold (2 when zero).
	SpeculationMultiplier float64
	// Faults configures deterministic fault injection for chaos runs; the
	// zero value disables it.
	Faults Faults
	// JobTimeout aborts a Run that exceeds this wall-clock budget with
	// ErrTimeout — the measured plane's T.O. outcome (§6.2 uses 4000 s).
	// Zero disables the check. The check is cooperative: in-flight tasks
	// finish, no new ones start.
	JobTimeout time.Duration
}

// PaperConfig returns the hardware envelope of the paper's testbed (§6.1):
// one master plus nine slaves — we model the nine workers — each with a
// six-core 3.5 GHz CPU, 64 GB RAM, a GTX 1080 Ti (11 GB), 10 Gbps Ethernet,
// Tc = 10 tasks per node, θt = 6 GB and θg = 1 GB.
func PaperConfig() Config {
	return Config{
		Nodes:              9,
		TasksPerNode:       10,
		TaskMemBytes:       6e9,  // θt = 6 GB
		NodeMemBytes:       64e9, // 64 GB per node
		GPUMemPerTaskBytes: 1e9,  // θg = 1 GB
		GPUsPerNode:        1,
		NetworkBandwidth:   10e9 / 8,      // 10 Gbps
		PCIEBandwidth:      12e9,          // effective PCI-E 3.0 x16
		DiskCapacityBytes:  36e12,         // 36 TB across the cluster
		CPUFlops:           6 * 3.5e9 * 2, // 6 cores × 3.5 GHz × 2 flop/cycle (conservative DP)
		GPUFlops:           332e9,         // GTX 1080 Ti FP64 ≈ 1/32 of FP32 11.3 TF
	}
}

// LaptopConfig returns a scaled-down envelope for measured runs on a single
// machine: same node/slot topology as the paper but with budgets sized for
// laptop-scale matrices, so the elastic behaviors (cuboid sizing, OOM
// boundaries) still engage.
func LaptopConfig() Config {
	c := PaperConfig()
	c.TaskMemBytes = 64 << 20
	c.NodeMemBytes = 640 << 20
	c.GPUMemPerTaskBytes = 8 << 20
	c.DiskCapacityBytes = 4 << 30
	return c
}

// Validate reports a descriptive error for nonsensical configurations.
func (c Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("cluster: config: Nodes must be positive, got %d", c.Nodes)
	case c.TasksPerNode <= 0:
		return fmt.Errorf("cluster: config: TasksPerNode must be positive, got %d", c.TasksPerNode)
	case c.TaskMemBytes <= 0:
		return fmt.Errorf("cluster: config: TaskMemBytes must be positive, got %d", c.TaskMemBytes)
	}
	return nil
}

// Slots returns M × Tc, the cluster-wide concurrent task capacity.
func (c Config) Slots() int { return c.Nodes * c.TasksPerNode }

// GPUs returns the per-node device count, defaulting to 1.
func (c Config) GPUs() int {
	if c.GPUsPerNode <= 0 {
		return 1
	}
	return c.GPUsPerNode
}

// Cluster executes task sets against a Config, enforcing the memory
// discipline and recording metrics.
type Cluster struct {
	cfg      Config
	recorder *metrics.Recorder
	// injector delivers the deterministic faults of cfg.Faults; nil when
	// injection is disabled.
	injector *Injector
	// failureInjector, when set, is consulted before each task attempt and
	// its non-nil error is treated as that attempt's failure — the test
	// hook for exercising the retry machinery (lost executors, flaky I/O).
	failureInjector func(taskName string, attempt int) error
}

// SetFailureInjector installs a fault hook for tests and chaos runs: it is
// called before every task attempt with the task name and the 0-based
// attempt number; a non-nil return fails that attempt. Install before
// running tasks; the hook is read concurrently by workers.
func (c *Cluster) SetFailureInjector(f func(taskName string, attempt int) error) {
	c.failureInjector = f
}

// FaultInjector returns the deterministic fault injector configured via
// Config.Faults, or nil when injection is disabled. The executors consult
// it for shuffle-fetch faults during aggregation.
func (c *Cluster) FaultInjector() *Injector { return c.injector }

// New creates a cluster with its own metrics recorder.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Cluster{cfg: cfg, recorder: &metrics.Recorder{}, injector: NewInjector(cfg.Faults)}, nil
}

// Config returns the hardware envelope.
func (c *Cluster) Config() Config { return c.cfg }

// Recorder returns the cluster's metrics recorder.
func (c *Cluster) Recorder() *metrics.Recorder { return c.recorder }

// Task is one schedulable unit of work: the paper's "task" running on a core
// of a cluster node. MemEstimate is the working-set size charged against θt
// before the task runs, matching how the engine estimates cuboid sizes.
type Task struct {
	// Name identifies the task in error messages, e.g. "cuboid(1,0,2)".
	Name string
	// MemEstimate is the bytes of task working set charged against θt.
	MemEstimate int64
	// Fn is the task body. It runs on a worker goroutine.
	Fn func() error
}

// attemptCtx executes one attempt of one task: fault injection first (an
// injected crash or O.O.M. fails the attempt; an injected straggler delay
// sleeps, abandoning the attempt promptly if its context is cancelled),
// then the task body. A panic in the body is converted to an error so one
// bad block cannot take down the driver. Run/RunCtx (elastic.go) drive
// this with the retry and speculation machinery.
func (c *Cluster) attemptCtx(ctx context.Context, t Task, attempt int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("task panicked: %v", r)
		}
	}()
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrCancelled, err)
	}
	if inj := c.injector; inj != nil {
		if err := inj.AttemptError(t.Name, attempt); err != nil {
			c.recorder.AddFaultInjected()
			return err
		}
		if d := inj.Delay(t.Name, attempt); d > 0 {
			c.recorder.AddFaultInjected()
			timer := time.NewTimer(d)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return fmt.Errorf("%w: %w", ErrCancelled, ctx.Err())
			}
		}
	}
	if c.failureInjector != nil {
		if err := c.failureInjector(t.Name, attempt); err != nil {
			return err
		}
	}
	return t.Fn()
}

// ChargeSpill accounts n bytes of intermediate data spilled to disk and
// fails with ErrExceededDisk when the cumulative volume passes the cluster's
// disk capacity.
func (c *Cluster) ChargeSpill(n int64) error {
	c.recorder.AddSpill(n)
	if c.cfg.DiskCapacityBytes > 0 && c.recorder.SpillBytes() > c.cfg.DiskCapacityBytes {
		return fmt.Errorf("%w: %s spilled, capacity %s",
			ErrExceededDisk,
			metrics.FormatBytes(c.recorder.SpillBytes()),
			metrics.FormatBytes(c.cfg.DiskCapacityBytes))
	}
	return nil
}
