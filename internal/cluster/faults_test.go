package cluster

import (
	"errors"
	"testing"
	"time"
)

func TestInjectorDisabledIsNil(t *testing.T) {
	if inj := NewInjector(Faults{}); inj != nil {
		t.Fatalf("zero-value Faults should disable injection, got %+v", inj)
	}
	if inj := NewInjector(Faults{Seed: 42}); inj != nil {
		t.Fatal("a seed alone should not enable injection")
	}
	var nilInj *Injector
	if err := nilInj.AttemptError("t", 0); err != nil {
		t.Fatalf("nil injector must inject nothing, got %v", err)
	}
	if d := nilInj.Delay("t", 0); d != 0 {
		t.Fatalf("nil injector must not delay, got %v", d)
	}
	if nilInj.FetchFailed("t", 0) {
		t.Fatal("nil injector must not fail fetches")
	}
}

// TestInjectorDeterministic verifies the core chaos property: fault
// decisions depend only on (seed, kind, name, attempt), so two injectors
// with the same config agree on every decision, and a different seed
// produces a different fault set.
func TestInjectorDeterministic(t *testing.T) {
	cfg := Faults{Seed: 7, CrashRate: 0.3, OOMRate: 0.2, StragglerRate: 0.25, FetchFailRate: 0.3}
	a, b := NewInjector(cfg), NewInjector(cfg)
	names := []string{"cuboid(0,0,0)", "cuboid(1,2,3)", "rmm-task(5)", "agg(7)"}
	for _, name := range names {
		for attempt := 0; attempt < 3; attempt++ {
			ea, eb := a.AttemptError(name, attempt), b.AttemptError(name, attempt)
			if (ea == nil) != (eb == nil) || (ea != nil && ea.Error() != eb.Error()) {
				t.Fatalf("same seed diverged on %s attempt %d: %v vs %v", name, attempt, ea, eb)
			}
			if a.Delay(name, attempt) != b.Delay(name, attempt) {
				t.Fatalf("same seed diverged on delay for %s attempt %d", name, attempt)
			}
			if a.FetchFailed(name, attempt) != b.FetchFailed(name, attempt) {
				t.Fatalf("same seed diverged on fetch for %s attempt %d", name, attempt)
			}
		}
	}
}

// TestInjectorSeedChangesFaults checks that at least one decision differs
// across seeds at a rate where that is overwhelmingly likely.
func TestInjectorSeedChangesFaults(t *testing.T) {
	mk := func(seed int64) *Injector {
		return NewInjector(Faults{Seed: seed, CrashRate: 0.5})
	}
	a, b := mk(1), mk(2)
	for attempt := 0; attempt < 3; attempt++ {
		for i := 0; i < 64; i++ {
			name := "task" + string(rune('a'+i%26)) + string(rune('0'+i/26))
			if (a.AttemptError(name, attempt) == nil) != (b.AttemptError(name, attempt) == nil) {
				return // found a divergence
			}
		}
	}
	t.Fatal("seeds 1 and 2 produced identical crash sets over 192 rolls")
}

// TestInjectorFaultBound verifies the convergence guarantee: attempts
// numbered at or past MaxFaultsPerTask are never faulted, even at rate 1.
func TestInjectorFaultBound(t *testing.T) {
	inj := NewInjector(Faults{
		Seed: 3, CrashRate: 1, OOMRate: 1, StragglerRate: 1, FetchFailRate: 1,
		MaxFaultsPerTask: 2, StragglerDelay: time.Hour,
	})
	for attempt := 0; attempt < 2; attempt++ {
		if inj.AttemptError("t", attempt) == nil {
			t.Fatalf("rate-1 attempt %d should fail", attempt)
		}
	}
	for attempt := 2; attempt < 10; attempt++ {
		if err := inj.AttemptError("t", attempt); err != nil {
			t.Fatalf("attempt %d is past the fault bound, got %v", attempt, err)
		}
		if d := inj.Delay("t", attempt); d != 0 {
			t.Fatalf("attempt %d should not straggle, got %v", attempt, d)
		}
		if inj.FetchFailed("t", attempt) {
			t.Fatalf("fetch attempt %d should not fail past the bound", attempt)
		}
	}
}

// TestInjectedErrorsMatchSentinels pins the error taxonomy: crashes match
// ErrInjectedCrash, injected memory pressure matches ErrOutOfMemory.
func TestInjectedErrorsMatchSentinels(t *testing.T) {
	crash := NewInjector(Faults{Seed: 1, CrashRate: 1})
	if err := crash.AttemptError("t", 0); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("want ErrInjectedCrash, got %v", err)
	}
	oom := NewInjector(Faults{Seed: 1, OOMRate: 1})
	if err := oom.AttemptError("t", 0); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("want ErrOutOfMemory, got %v", err)
	}
}
