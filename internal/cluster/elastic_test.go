package cluster

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func elasticConfig() Config {
	cfg := LaptopConfig()
	cfg.LocalWorkers = 4
	return cfg
}

// TestInjectedCrashesAreRetriedToSuccess runs tasks under a heavy crash
// rate with a retry budget past the fault bound: every task must converge,
// each exactly once, and the recorder must count the retries.
func TestInjectedCrashesAreRetriedToSuccess(t *testing.T) {
	cfg := elasticConfig()
	cfg.TaskRetries = 4 // > MaxFaultsPerTask (3) → guaranteed convergence
	cfg.Faults = Faults{Seed: 11, CrashRate: 0.6}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var runs [16]int32
	tasks := make([]Task, len(runs))
	for i := range tasks {
		i := i
		tasks[i] = Task{
			Name: "chaos-task-" + string(rune('a'+i)),
			Fn:   func() error { atomic.AddInt32(&runs[i], 1); return nil },
		}
	}
	if err := c.Run(tasks); err != nil {
		t.Fatalf("run failed despite sufficient retry budget: %v", err)
	}
	for i, n := range runs {
		if n != 1 {
			t.Fatalf("task %d body ran %d times; crashes fire before the body, so exactly 1 expected", i, n)
		}
	}
	el := c.Recorder().Elastic()
	if el.FaultsInjected == 0 {
		t.Fatal("crash rate 0.6 over 16 tasks should have injected at least one fault")
	}
	if el.TaskRetries == 0 {
		t.Fatal("injected crashes should have consumed retries")
	}
	if el.TaskRetries > int64(len(tasks)*3) {
		t.Fatalf("retries %d exceed the per-task fault bound × tasks", el.TaskRetries)
	}
}

// TestRetriesExhaustedSentinel checks that a persistently failing task
// surfaces ErrRetriesExhausted wrapping the last attempt error.
func TestRetriesExhaustedSentinel(t *testing.T) {
	cfg := elasticConfig()
	cfg.TaskRetries = 2
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err = c.Run([]Task{{Name: "doomed", Fn: func() error { return boom }}})
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("want ErrRetriesExhausted, got %v", err)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("exhaustion error should wrap the last attempt error, got %v", err)
	}
}

// TestSpeculationRescuesStragglers injects long straggler delays on a
// minority of tasks and checks that speculative copies finish the wave far
// sooner than the injected delay, with speculation counted in the metrics.
func TestSpeculationRescuesStragglers(t *testing.T) {
	cfg := elasticConfig()
	cfg.LocalWorkers = 8
	cfg.Speculation = true
	cfg.SpeculationQuantile = 0.5
	cfg.SpeculationMultiplier = 2
	cfg.Faults = Faults{
		Seed:           21,
		StragglerRate:  0.3,
		StragglerDelay: 3 * time.Second,
		// One fault per task: the speculative copy runs attempt 1, which
		// never straggles, so it wins quickly.
		MaxFaultsPerTask: 1,
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tasks := make([]Task, 24)
	for i := range tasks {
		tasks[i] = Task{
			Name: "wave-" + string(rune('a'+i)),
			Fn: func() error {
				time.Sleep(time.Millisecond)
				return nil
			},
		}
	}
	start := time.Now()
	if err := c.Run(tasks); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	el := c.Recorder().Elastic()
	if el.SpeculativeLaunched == 0 {
		t.Fatal("straggler rate 0.3 over 24 tasks should have launched speculative copies")
	}
	if el.SpeculativeWins == 0 {
		t.Fatal("speculative copies of 3s stragglers should have won")
	}
	if elapsed >= cfg.Faults.StragglerDelay {
		t.Fatalf("wave took %v; speculation should beat the %v straggler delay",
			elapsed, cfg.Faults.StragglerDelay)
	}
}

// TestCancelDuringBackoffIsPrompt cancels a job while its only task waits
// out a long retry backoff; RunCtx must return well before the backoff
// expires, with an error matching both ErrCancelled and context.Canceled.
func TestCancelDuringBackoffIsPrompt(t *testing.T) {
	cfg := elasticConfig()
	cfg.TaskRetries = 3
	cfg.RetryBackoff = 2 * time.Second
	cfg.RetryBackoffCap = 2 * time.Second
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(20*time.Millisecond, cancel)
	start := time.Now()
	err = c.RunCtx(ctx, []Task{{Name: "flaky", Fn: func() error { return errors.New("flake") }}})
	elapsed := time.Since(start)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("want ErrCancelled, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancellation should wrap ctx.Err(), got %v", err)
	}
	if elapsed >= cfg.RetryBackoff {
		t.Fatalf("cancel took %v, should abort within one backoff step (%v)", elapsed, cfg.RetryBackoff)
	}
}

// TestPreCancelledContext checks RunCtx fails immediately without running
// any task when handed an already-cancelled context.
func TestPreCancelledContext(t *testing.T) {
	c, err := New(elasticConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err = c.RunCtx(ctx, []Task{{Name: "t", Fn: func() error { ran = true; return nil }}})
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("want ErrCancelled, got %v", err)
	}
	if ran {
		t.Fatal("no task should run under a pre-cancelled context")
	}
}

// TestGenuineOOMIsNotRetried: a θt violation is structural, so it must fail
// before any attempt and consume no retry budget.
func TestGenuineOOMIsNotRetried(t *testing.T) {
	cfg := elasticConfig()
	cfg.TaskRetries = 5
	cfg.TaskMemBytes = 1 << 10
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	err = c.Run([]Task{{Name: "huge", MemEstimate: 1 << 20, Fn: func() error { return nil }}})
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("want ErrOutOfMemory, got %v", err)
	}
	if el := c.Recorder().Elastic(); el.TaskRetries != 0 {
		t.Fatalf("structural OOM must not be retried, counted %d retries", el.TaskRetries)
	}
}
