package cluster

import (
	"errors"
	"fmt"
	"time"
)

// Deterministic fault injection — the chaos layer of the elastic-execution
// subsystem. Faults are decided by hashing (seed, fault kind, task name,
// attempt number), never by sampling shared RNG state, so a given seed
// produces the same fault set regardless of goroutine scheduling, worker
// count, or the order tasks happen to start in. That determinism is what
// lets the chaos tests assert bit-identical output against a failure-free
// baseline while the scheduler's retry/speculation machinery runs for real.

// ErrInjectedCrash reports a task attempt killed by the fault injector —
// the simulated analog of a lost executor.
var ErrInjectedCrash = errors.New("cluster: injected task crash (executor lost)")

// Faults configures the deterministic fault injector. The zero value
// disables injection. Rates are per task attempt in [0, 1]; each fault kind
// is rolled independently, so one attempt can both straggle and crash.
type Faults struct {
	// Seed selects the fault set. Two runs with equal seeds and equal task
	// names see identical faults.
	Seed int64
	// CrashRate is the probability an attempt dies with ErrInjectedCrash.
	CrashRate float64
	// OOMRate is the probability an attempt fails with an injected O.O.M.
	// (transient executor memory pressure, wrapping ErrOutOfMemory).
	OOMRate float64
	// StragglerRate is the probability an attempt is delayed by
	// StragglerDelay before running — the straggler model that speculative
	// execution mitigates.
	StragglerRate float64
	// StragglerDelay is the injected straggler latency (default 15ms).
	StragglerDelay time.Duration
	// FetchFailRate is the probability one shuffle-fetch attempt of a
	// task's output fails during aggregation; repeated failures mark the
	// partition lost and force lineage recomputation.
	FetchFailRate float64
	// MaxFaultsPerTask bounds injected faults per task name (default 3):
	// attempts numbered at or above the bound are never faulted, so a
	// retry budget larger than the bound is guaranteed to converge.
	MaxFaultsPerTask int
}

// Enabled reports whether any fault kind has a positive rate.
func (f Faults) Enabled() bool {
	return f.CrashRate > 0 || f.OOMRate > 0 || f.StragglerRate > 0 || f.FetchFailRate > 0
}

// Injector delivers the faults a Faults config describes. A nil *Injector
// is valid and injects nothing.
type Injector struct {
	f Faults
}

// NewInjector builds an injector for the config, or nil when injection is
// disabled.
func NewInjector(f Faults) *Injector {
	if !f.Enabled() {
		return nil
	}
	if f.StragglerDelay <= 0 {
		f.StragglerDelay = 15 * time.Millisecond
	}
	if f.MaxFaultsPerTask <= 0 {
		f.MaxFaultsPerTask = 3
	}
	return &Injector{f: f}
}

// Config returns the injector's fault configuration.
func (in *Injector) Config() Faults { return in.f }

// AttemptError returns the injected failure for one task attempt: a crash,
// an injected O.O.M., or nil. Attempts past the per-task fault bound never
// fail.
func (in *Injector) AttemptError(name string, attempt int) error {
	if in == nil || attempt >= in.f.MaxFaultsPerTask {
		return nil
	}
	if in.roll("crash", name, attempt) < in.f.CrashRate {
		return fmt.Errorf("%w: %s attempt %d", ErrInjectedCrash, name, attempt)
	}
	if in.roll("oom", name, attempt) < in.f.OOMRate {
		return fmt.Errorf("%w: injected executor memory pressure: %s attempt %d",
			ErrOutOfMemory, name, attempt)
	}
	return nil
}

// Delay returns the straggler latency injected into one task attempt, zero
// for attempts that run at full speed.
func (in *Injector) Delay(name string, attempt int) time.Duration {
	if in == nil || attempt >= in.f.MaxFaultsPerTask {
		return 0
	}
	if in.roll("straggle", name, attempt) < in.f.StragglerRate {
		return in.f.StragglerDelay
	}
	return 0
}

// FetchFailed reports whether shuffle-fetch attempt number `attempt` of the
// named task's output fails.
func (in *Injector) FetchFailed(name string, attempt int) bool {
	if in == nil || attempt >= in.f.MaxFaultsPerTask {
		return false
	}
	return in.roll("fetch", name, attempt) < in.f.FetchFailRate
}

// roll returns a uniform value in [0, 1) determined entirely by
// (seed, kind, name, attempt).
func (in *Injector) roll(kind, name string, attempt int) float64 {
	h := fnv64(kind)
	h = mix64(h ^ fnv64(name))
	h = mix64(h ^ uint64(in.f.Seed))
	h = mix64(h ^ uint64(attempt))
	// Top 53 bits → [0, 1).
	return float64(h>>11) / (1 << 53)
}

// fnv64 is the FNV-1a hash of s.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
