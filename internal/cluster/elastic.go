package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"distme/internal/metrics"
)

// The elastic task scheduler: every task set the cluster runs goes through
// this machinery, which re-executes failed attempts with capped exponential
// backoff, launches speculative copies of stragglers once a configurable
// quantile of the wave has finished (first result wins; the loser's attempt
// context is cancelled), and cancels promptly — within one backoff step —
// when the job context is done. Task bodies must be idempotent and commit
// their side effects at most once (the executors commit under a mutex with
// first-writer-wins), which is what makes re-execution and speculation safe
// and keeps results bit-identical to a failure-free run.

// ErrCancelled reports that a job's context was cancelled; it always wraps
// the context's error, so errors.Is matches both.
var ErrCancelled = errors.New("cluster: job cancelled")

// ErrRetriesExhausted reports that a task failed more often than the
// configured retry budget allows; it wraps the task's last error.
var ErrRetriesExhausted = errors.New("cluster: task retries exhausted")

// workItem is one scheduled execution of a task: the initial attempt, a
// retry, or a speculative copy.
type workItem struct {
	idx  int
	spec bool
}

// taskState tracks one task through the run.
type taskState struct {
	done        bool // a winning attempt committed
	failures    int  // failed attempts so far
	inFlight    int  // attempts currently executing
	speculated  bool // a speculative copy was launched
	retryQueued bool // a retry is waiting out its backoff
	nextAttempt int  // attempt numbering (drives the fault injector)
	started     time.Time
	cancels     map[int]context.CancelFunc
}

type elasticRun struct {
	c     *Cluster
	ctx   context.Context
	tasks []Task
	start time.Time

	maxRetries  int
	backoffBase time.Duration
	backoffCap  time.Duration
	jrand       *rand.Rand // full-jitter source; guarded by mu

	mu        sync.Mutex
	cond      *sync.Cond
	state     []taskState
	queue     []workItem
	done      int
	fatal     error
	completed []time.Duration // durations of successful attempts
	timers    []*time.Timer

	// auxWG tracks the speculation monitor and the spare workers it spawns
	// for speculative copies (so a wave of stragglers occupying every
	// regular worker cannot starve its own rescue copies).
	auxWG sync.WaitGroup
}

// Run executes the tasks with the elastic scheduler and no caller context.
func (c *Cluster) Run(tasks []Task) error { return c.RunCtx(context.Background(), tasks) }

// RunCtx executes the tasks with at most Slots() in flight, after checking
// each task's memory estimate against θt. A memory violation returns an
// error wrapping ErrOutOfMemory before any task runs — that failure is
// structural, so it is never retried. Attempt failures are retried up to
// TaskRetries times with capped exponential backoff; stragglers get
// speculative copies when Speculation is enabled; the first fatal error
// stops scheduling (in-flight attempts are cancelled and drained) and is
// returned. Cancelling ctx aborts the run within one backoff step with an
// error wrapping both ErrCancelled and ctx.Err().
func (c *Cluster) RunCtx(ctx context.Context, tasks []Task) error {
	for _, t := range tasks {
		if t.MemEstimate > c.cfg.TaskMemBytes {
			return fmt.Errorf("%w: task %s needs %s, budget θt=%s",
				ErrOutOfMemory, t.Name,
				metrics.FormatBytes(t.MemEstimate), metrics.FormatBytes(c.cfg.TaskMemBytes))
		}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrCancelled, err)
	}
	if len(tasks) == 0 {
		return nil
	}

	workers := c.cfg.LocalWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if slots := c.cfg.Slots(); workers > slots {
		workers = slots
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}

	r := &elasticRun{
		c:           c,
		ctx:         ctx,
		tasks:       tasks,
		start:       time.Now(),
		maxRetries:  c.cfg.TaskRetries,
		backoffBase: c.cfg.RetryBackoff,
		backoffCap:  c.cfg.RetryBackoffCap,
		state:       make([]taskState, len(tasks)),
		queue:       make([]workItem, 0, len(tasks)),
	}
	if r.backoffBase <= 0 {
		r.backoffBase = time.Millisecond
	}
	if r.backoffCap <= 0 {
		r.backoffCap = 16 * r.backoffBase
	}
	jseed := c.cfg.RetryJitterSeed
	if jseed == 0 {
		jseed = time.Now().UnixNano()
	}
	r.jrand = rand.New(rand.NewSource(jseed))
	r.cond = sync.NewCond(&r.mu)
	for i := range tasks {
		r.state[i].cancels = make(map[int]context.CancelFunc)
		r.queue = append(r.queue, workItem{idx: i})
	}

	// Wake waiting workers when the caller cancels or the job times out —
	// they re-check both conditions at the top of their pick loop.
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			r.cond.Broadcast()
		case <-watchDone:
		}
	}()
	if c.cfg.JobTimeout > 0 {
		r.mu.Lock()
		r.timers = append(r.timers, time.AfterFunc(c.cfg.JobTimeout, r.cond.Broadcast))
		r.mu.Unlock()
	}

	monitorStop := make(chan struct{})
	if c.cfg.Speculation {
		r.auxWG.Add(1)
		go func() {
			defer r.auxWG.Done()
			r.monitor(monitorStop)
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.worker()
		}()
	}
	wg.Wait()
	close(watchDone)
	close(monitorStop)
	r.auxWG.Wait()

	r.mu.Lock()
	for _, t := range r.timers {
		t.Stop()
	}
	err := r.fatal
	r.mu.Unlock()
	return err
}

// finishedLocked reports whether workers should exit: a fatal error was
// recorded or every task completed.
func (r *elasticRun) finishedLocked() bool {
	return r.fatal != nil || r.done == len(r.tasks)
}

// worker pulls runnable items and executes attempts until the run finishes.
// Workers exit immediately on a fatal error; attempts already executing
// drain on their own workers before RunCtx returns, so no task side effect
// outlives the call.
func (r *elasticRun) worker() {
	for {
		r.mu.Lock()
		var item workItem
		for {
			if r.fatal == nil {
				if err := r.ctx.Err(); err != nil {
					r.fatal = fmt.Errorf("%w: %w", ErrCancelled, err)
					r.cancelAllLocked()
				} else if jt := r.c.cfg.JobTimeout; jt > 0 && time.Since(r.start) > jt {
					r.fatal = fmt.Errorf("%w: exceeded %v", ErrTimeout, jt)
					r.cancelAllLocked()
				}
			}
			if r.finishedLocked() {
				r.mu.Unlock()
				r.cond.Broadcast()
				return
			}
			if len(r.queue) > 0 {
				item = r.queue[0]
				r.queue = r.queue[1:]
				break
			}
			r.cond.Wait()
		}
		st := &r.state[item.idx]
		if st.done {
			r.mu.Unlock()
			continue
		}
		attempt := st.nextAttempt
		st.nextAttempt++
		actx, cancel := context.WithCancel(r.ctx)
		st.cancels[attempt] = cancel
		st.inFlight++
		if st.inFlight == 1 {
			st.started = time.Now()
		}
		t := r.tasks[item.idx]
		r.mu.Unlock()

		begin := time.Now()
		err := r.c.attemptCtx(actx, t, attempt)
		dur := time.Since(begin)

		r.mu.Lock()
		cancel()
		delete(st.cancels, attempt)
		st.inFlight--
		r.settleAttemptLocked(item, st, err, dur)
		r.mu.Unlock()
		r.cond.Broadcast()
	}
}

// settleAttemptLocked updates scheduling state after one attempt finishes.
func (r *elasticRun) settleAttemptLocked(item workItem, st *taskState, err error, dur time.Duration) {
	if st.done {
		// A sibling attempt already won; this one is the cancelled (or
		// merely late) loser and its result was discarded at commit.
		return
	}
	if err == nil {
		st.done = true
		r.done++
		r.completed = append(r.completed, dur)
		if item.spec {
			r.c.recorder.AddSpeculativeWin()
		}
		// First result wins: cancel the sibling attempts still in flight.
		for _, cancel := range st.cancels {
			cancel()
		}
		return
	}
	if errors.Is(err, ErrCancelled) || errors.Is(err, context.Canceled) {
		// The attempt was cancelled, not failed; job-level cancellation is
		// detected in the pick loop.
		return
	}
	st.failures++
	if st.inFlight > 0 {
		// A sibling attempt may still win; don't spend retry budget yet.
		return
	}
	if st.failures > r.maxRetries {
		name := r.tasks[item.idx].Name
		if r.maxRetries > 0 {
			r.fatal = fmt.Errorf("task %s: %w: failed after %d attempts: %w",
				name, ErrRetriesExhausted, st.failures, err)
		} else {
			r.fatal = fmt.Errorf("task %s: %w", name, err)
		}
		r.cancelAllLocked()
		return
	}
	r.c.recorder.AddTaskRetry()
	st.retryQueued = true
	r.scheduleRetryLocked(item.idx, r.backoffFor(st.failures))
}

// backoffFor returns the delay before retry n (1-based): full jitter over
// the capped exponential step — uniform in (0, min(base·2ⁿ⁻¹, cap)] — so
// tasks that failed together retry spread out instead of stampeding the
// same recovering resource. Called with r.mu held (it draws from jrand).
func (r *elasticRun) backoffFor(failures int) time.Duration {
	d := r.backoffBase
	for i := 1; i < failures; i++ {
		d *= 2
		if d >= r.backoffCap {
			d = r.backoffCap
			break
		}
	}
	if d > r.backoffCap {
		d = r.backoffCap
	}
	if d <= 0 {
		return d
	}
	return time.Duration(r.jrand.Int63n(int64(d)) + 1)
}

// scheduleRetryLocked enqueues a retry of task idx after the backoff. The
// timer fires into scheduler state (never a channel send), so late firings
// after the run ends are harmless.
func (r *elasticRun) scheduleRetryLocked(idx int, delay time.Duration) {
	r.timers = append(r.timers, time.AfterFunc(delay, func() {
		r.mu.Lock()
		st := &r.state[idx]
		st.retryQueued = false
		if r.fatal == nil && !st.done {
			r.queue = append(r.queue, workItem{idx: idx})
		}
		r.mu.Unlock()
		r.cond.Broadcast()
	}))
}

// cancelAllLocked cancels every in-flight attempt so the drain is prompt.
func (r *elasticRun) cancelAllLocked() {
	for i := range r.state {
		for _, cancel := range r.state[i].cancels {
			cancel()
		}
	}
}

// speculationTick is how often the straggler monitor samples the wave.
const speculationTick = 2 * time.Millisecond

// monitor watches running tasks and launches one speculative copy of each
// straggler: once the configured quantile of the wave has completed, any
// task in flight for longer than multiplier × the quantile completion time
// gets a second attempt.
func (r *elasticRun) monitor(stop <-chan struct{}) {
	quantile := r.c.cfg.SpeculationQuantile
	if quantile <= 0 || quantile >= 1 {
		quantile = 0.75
	}
	mult := r.c.cfg.SpeculationMultiplier
	if mult <= 1 {
		mult = 2
	}
	ticker := time.NewTicker(speculationTick)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		r.mu.Lock()
		if r.finishedLocked() {
			r.mu.Unlock()
			return
		}
		minDone := int(quantile * float64(len(r.tasks)))
		if minDone < 1 {
			minDone = 1
		}
		if r.done < minDone {
			r.mu.Unlock()
			continue
		}
		threshold := time.Duration(mult * float64(r.quantileDurationLocked(quantile)))
		if threshold < speculationTick {
			threshold = speculationTick
		}
		now := time.Now()
		launched := 0
		for i := range r.state {
			st := &r.state[i]
			if st.done || st.speculated || st.inFlight == 0 {
				continue
			}
			if now.Sub(st.started) > threshold {
				st.speculated = true
				r.queue = append(r.queue, workItem{idx: i, spec: true})
				r.c.recorder.AddSpeculative()
				launched++
			}
		}
		r.mu.Unlock()
		if launched > 0 {
			// A speculative copy exists because its original is stuck; if
			// stragglers hold every regular worker, the copy would wait for
			// the very delay it is meant to beat. Run copies on spare
			// workers — the cluster's slack capacity. The spares pick work
			// off the shared queue and exit with the run.
			for i := 0; i < launched; i++ {
				r.auxWG.Add(1)
				go func() {
					defer r.auxWG.Done()
					r.worker()
				}()
			}
			r.cond.Broadcast()
		}
	}
}

// quantileDurationLocked returns the q-th quantile of completed attempt
// durations.
func (r *elasticRun) quantileDurationLocked(q float64) time.Duration {
	if len(r.completed) == 0 {
		return 0
	}
	durs := make([]time.Duration, len(r.completed))
	copy(durs, r.completed)
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	idx := int(q * float64(len(durs)))
	if idx >= len(durs) {
		idx = len(durs) - 1
	}
	return durs[idx]
}
