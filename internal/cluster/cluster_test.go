package cluster

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func testConfig() Config {
	c := LaptopConfig()
	c.LocalWorkers = 4
	return c
}

func TestConfigValidate(t *testing.T) {
	for _, bad := range []Config{
		{},
		{Nodes: 1},
		{Nodes: 1, TasksPerNode: 1},
		{Nodes: -1, TasksPerNode: 1, TaskMemBytes: 1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("config %+v validated", bad)
		}
	}
	if err := PaperConfig().Validate(); err != nil {
		t.Fatalf("paper config invalid: %v", err)
	}
}

func TestPaperConfigMatchesTestbed(t *testing.T) {
	c := PaperConfig()
	if c.Nodes != 9 || c.TasksPerNode != 10 {
		t.Fatalf("paper topology = %d nodes × %d tasks", c.Nodes, c.TasksPerNode)
	}
	if c.Slots() != 90 {
		t.Fatalf("Slots = %d, want 90", c.Slots())
	}
	if c.TaskMemBytes != 6e9 {
		t.Fatalf("θt = %d, want 6 GB", c.TaskMemBytes)
	}
	if c.GPUMemPerTaskBytes != 1e9 {
		t.Fatalf("θg = %d, want 1 GB", c.GPUMemPerTaskBytes)
	}
}

func TestRunExecutesAllTasks(t *testing.T) {
	c, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var n atomic.Int64
	tasks := make([]Task, 50)
	for i := range tasks {
		tasks[i] = Task{Name: fmt.Sprintf("t%d", i), Fn: func() error { n.Add(1); return nil }}
	}
	if err := c.Run(tasks); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 50 {
		t.Fatalf("ran %d tasks, want 50", n.Load())
	}
}

func TestRunEnforcesMemoryBudget(t *testing.T) {
	cfg := testConfig()
	c, _ := New(cfg)
	ran := false
	err := c.Run([]Task{{
		Name:        "hog",
		MemEstimate: cfg.TaskMemBytes + 1,
		Fn:          func() error { ran = true; return nil },
	}})
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	if ran {
		t.Fatal("task ran despite OOM check")
	}
}

func TestRunMemoryBudgetBoundaryAllowed(t *testing.T) {
	cfg := testConfig()
	c, _ := New(cfg)
	err := c.Run([]Task{{Name: "fit", MemEstimate: cfg.TaskMemBytes, Fn: func() error { return nil }}})
	if err != nil {
		t.Fatalf("task exactly at θt rejected: %v", err)
	}
}

func TestRunPropagatesFirstError(t *testing.T) {
	c, _ := New(testConfig())
	boom := errors.New("boom")
	var after atomic.Int64
	tasks := []Task{
		{Name: "ok", Fn: func() error { return nil }},
		{Name: "bad", Fn: func() error { return boom }},
	}
	for i := 0; i < 100; i++ {
		tasks = append(tasks, Task{Name: "late", Fn: func() error { after.Add(1); return nil }})
	}
	err := c.Run(tasks)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	// Scheduling must stop early: with 4 workers, far fewer than 100 of the
	// trailing tasks should run after the failure.
	if after.Load() > 90 {
		t.Fatalf("%d tasks ran after failure; scheduler did not stop", after.Load())
	}
}

func TestRunEmptyTaskList(t *testing.T) {
	c, _ := New(testConfig())
	if err := c.Run(nil); err != nil {
		t.Fatalf("empty run failed: %v", err)
	}
}

func TestRunParallelismBoundedBySlots(t *testing.T) {
	cfg := testConfig()
	cfg.Nodes, cfg.TasksPerNode = 1, 2 // 2 slots
	cfg.LocalWorkers = 16
	c, _ := New(cfg)
	var inFlight, peak atomic.Int64
	tasks := make([]Task, 20)
	for i := range tasks {
		tasks[i] = Task{Name: "t", Fn: func() error {
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			inFlight.Add(-1)
			return nil
		}}
	}
	if err := c.Run(tasks); err != nil {
		t.Fatal(err)
	}
	if peak.Load() > 2 {
		t.Fatalf("peak parallelism %d exceeds 2 slots", peak.Load())
	}
}

func TestChargeSpillEDC(t *testing.T) {
	cfg := testConfig()
	cfg.DiskCapacityBytes = 1000
	c, _ := New(cfg)
	if err := c.ChargeSpill(600); err != nil {
		t.Fatalf("first spill failed: %v", err)
	}
	err := c.ChargeSpill(600)
	if !errors.Is(err, ErrExceededDisk) {
		t.Fatalf("err = %v, want ErrExceededDisk", err)
	}
}

func TestChargeSpillUnlimitedWhenZero(t *testing.T) {
	cfg := testConfig()
	cfg.DiskCapacityBytes = 0
	c, _ := New(cfg)
	if err := c.ChargeSpill(1 << 50); err != nil {
		t.Fatalf("unlimited disk rejected spill: %v", err)
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestRetriesRecoverFlakyTask(t *testing.T) {
	cfg := testConfig()
	cfg.TaskRetries = 2
	c, _ := New(cfg)
	// Fail the first two attempts of every task; the third succeeds.
	c.SetFailureInjector(func(name string, attempt int) error {
		if attempt < 2 {
			return fmt.Errorf("injected loss of %s (attempt %d)", name, attempt)
		}
		return nil
	})
	var ran atomic.Int64
	err := c.Run([]Task{{Name: "flaky", Fn: func() error { ran.Add(1); return nil }}})
	if err != nil {
		t.Fatalf("retries did not recover: %v", err)
	}
	if ran.Load() != 1 {
		t.Fatalf("task body ran %d times, want 1 (injector fails before the body)", ran.Load())
	}
}

func TestRetriesExhaustedFails(t *testing.T) {
	cfg := testConfig()
	cfg.TaskRetries = 1
	c, _ := New(cfg)
	c.SetFailureInjector(func(string, int) error { return errors.New("always down") })
	err := c.Run([]Task{{Name: "doomed", Fn: func() error { return nil }}})
	if err == nil {
		t.Fatal("exhausted retries did not fail")
	}
	if !strings.Contains(err.Error(), "2 attempts") {
		t.Fatalf("error should mention attempts: %v", err)
	}
}

func TestTaskPanicBecomesError(t *testing.T) {
	c, _ := New(testConfig())
	err := c.Run([]Task{{Name: "bomb", Fn: func() error { panic("kaboom") }}})
	if err == nil {
		t.Fatal("panicking task did not fail the job")
	}
	if !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("panic value lost: %v", err)
	}
}

func TestRetryRerunsTaskBodyOnBodyFailure(t *testing.T) {
	cfg := testConfig()
	cfg.TaskRetries = 3
	c, _ := New(cfg)
	var calls atomic.Int64
	err := c.Run([]Task{{Name: "eventually", Fn: func() error {
		if calls.Add(1) < 3 {
			return errors.New("transient")
		}
		return nil
	}}})
	if err != nil {
		t.Fatalf("body retry failed: %v", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("body ran %d times, want 3", calls.Load())
	}
}

func TestJobTimeoutAborts(t *testing.T) {
	cfg := testConfig()
	cfg.JobTimeout = 10 * time.Millisecond
	cfg.LocalWorkers = 1
	c, _ := New(cfg)
	var ran atomic.Int64
	tasks := make([]Task, 50)
	for i := range tasks {
		tasks[i] = Task{Name: "slow", Fn: func() error {
			ran.Add(1)
			time.Sleep(5 * time.Millisecond)
			return nil
		}}
	}
	err := c.Run(tasks)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if ran.Load() >= 50 {
		t.Fatal("timeout did not stop scheduling")
	}
}

func TestJobTimeoutDisabledByDefault(t *testing.T) {
	c, _ := New(testConfig())
	err := c.Run([]Task{{Name: "t", Fn: func() error {
		time.Sleep(2 * time.Millisecond)
		return nil
	}}})
	if err != nil {
		t.Fatalf("zero timeout should not fire: %v", err)
	}
}
