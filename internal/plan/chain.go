package plan

import (
	"fmt"
	"math"
)

// Dims is an element-dimension hint (rows × cols) for a plan input,
// supplied to CompileWithShapes so the compiler can cost-order
// multiplication chains.
type Dims struct {
	Rows, Cols int64
}

// CompileWithShapes compiles like Compile but additionally re-associates
// multiplication chains by the classical matrix-chain dynamic program:
// A×B×C×… is parenthesized to minimize Σ m·k·n scalar work, which on the
// engine also minimizes the intermediate matrices that must be shuffled.
// Shapes must cover every Var that participates in a chain of length ≥ 3;
// other expressions pass through unchanged. Inconsistent dimensions
// (inner mismatch along a chain) are reported as errors at compile time —
// the planner's static type check.
func CompileWithShapes(e Expr, shapes map[string]Dims) (*Program, error) {
	if e == nil {
		return nil, fmt.Errorf("plan: nil expression")
	}
	rewritten, err := reassociate(rewrite(e), shapes)
	if err != nil {
		return nil, err
	}
	return Compile(rewritten)
}

// reassociate walks the tree bottom-up, flattening MatMul chains and
// re-parenthesizing any chain of length ≥ 3 whose factor shapes are all
// known.
func reassociate(e Expr, shapes map[string]Dims) (Expr, error) {
	switch v := e.(type) {
	case *Var:
		return v, nil
	case *MatMul:
		factors, err := flattenChain(e, shapes)
		if err != nil {
			return nil, err
		}
		if factors == nil {
			// Shapes unavailable somewhere in the chain: recurse plainly.
			l, err := reassociate(v.L, shapes)
			if err != nil {
				return nil, err
			}
			r, err := reassociate(v.R, shapes)
			if err != nil {
				return nil, err
			}
			return &MatMul{L: l, R: r}, nil
		}
		if len(factors) < 3 {
			return e, nil
		}
		return chainOrder(factors)
	case *Add:
		return reassocBinary(v.L, v.R, shapes, func(l, r Expr) Expr { return &Add{L: l, R: r} })
	case *Sub:
		return reassocBinary(v.L, v.R, shapes, func(l, r Expr) Expr { return &Sub{L: l, R: r} })
	case *Hadamard:
		return reassocBinary(v.L, v.R, shapes, func(l, r Expr) Expr { return &Hadamard{L: l, R: r} })
	case *DivElem:
		return reassocBinary(v.L, v.R, shapes, func(l, r Expr) Expr { return &DivElem{L: l, R: r, Eps: v.Eps} })
	case *Transpose:
		x, err := reassociate(v.X, shapes)
		if err != nil {
			return nil, err
		}
		return &Transpose{X: x}, nil
	case *Scale:
		x, err := reassociate(v.X, shapes)
		if err != nil {
			return nil, err
		}
		return &Scale{S: v.S, X: x}, nil
	default:
		return nil, fmt.Errorf("plan: unknown expression %T", e)
	}
}

func reassocBinary(l, r Expr, shapes map[string]Dims, mk func(l, r Expr) Expr) (Expr, error) {
	nl, err := reassociate(l, shapes)
	if err != nil {
		return nil, err
	}
	nr, err := reassociate(r, shapes)
	if err != nil {
		return nil, err
	}
	return mk(nl, nr), nil
}

// factor is one chain element with its resolved dimensions.
type factor struct {
	expr Expr
	dims Dims
}

// flattenChain collects the factors of a left/right-nested MatMul chain.
// It returns nil (no error) when some factor's shape cannot be resolved,
// and an error when shapes are known but inconsistent.
func flattenChain(e Expr, shapes map[string]Dims) ([]factor, error) {
	var out []factor
	var walk func(e Expr) (bool, error)
	walk = func(e Expr) (bool, error) {
		if m, ok := e.(*MatMul); ok {
			okL, err := walk(m.L)
			if err != nil || !okL {
				return okL, err
			}
			return walk(m.R)
		}
		d, ok := shapeOfExpr(e, shapes)
		if !ok {
			return false, nil
		}
		// Recurse into the factor itself (it may contain nested chains).
		f, err := reassociate(e, shapes)
		if err != nil {
			return false, err
		}
		out = append(out, factor{expr: f, dims: d})
		return true, nil
	}
	ok, err := walk(e)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	for i := 1; i < len(out); i++ {
		if out[i-1].dims.Cols != out[i].dims.Rows {
			return nil, fmt.Errorf("plan: chain factor %d is %dx%d but the next needs %d rows",
				i-1, out[i-1].dims.Rows, out[i-1].dims.Cols, out[i].dims.Rows)
		}
	}
	return out, nil
}

// shapeOfExpr resolves the dimensions of a non-MatMul chain factor.
func shapeOfExpr(e Expr, shapes map[string]Dims) (Dims, bool) {
	switch v := e.(type) {
	case *Var:
		d, ok := shapes[v.Name]
		return d, ok
	case *Transpose:
		d, ok := shapeOfExpr(v.X, shapes)
		return Dims{Rows: d.Cols, Cols: d.Rows}, ok
	case *Scale:
		return shapeOfExpr(v.X, shapes)
	case *Add:
		d, ok := shapeOfExpr(v.L, shapes)
		return d, ok
	case *Sub:
		d, ok := shapeOfExpr(v.L, shapes)
		return d, ok
	case *Hadamard:
		d, ok := shapeOfExpr(v.L, shapes)
		return d, ok
	case *DivElem:
		d, ok := shapeOfExpr(v.L, shapes)
		return d, ok
	case *MatMul:
		l, okL := shapeOfExpr(v.L, shapes)
		r, okR := shapeOfExpr(v.R, shapes)
		return Dims{Rows: l.Rows, Cols: r.Cols}, okL && okR
	default:
		return Dims{}, false
	}
}

// chainOrder runs the O(n³) matrix-chain DP and rebuilds the optimal tree.
func chainOrder(factors []factor) (Expr, error) {
	n := len(factors)
	// dims[i] = rows of factor i; dims[n] = cols of the last factor.
	dims := make([]int64, n+1)
	for i, f := range factors {
		dims[i] = f.dims.Rows
	}
	dims[n] = factors[n-1].dims.Cols

	cost := make([][]float64, n)
	split := make([][]int, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		split[i] = make([]int, n)
	}
	for length := 2; length <= n; length++ {
		for i := 0; i+length-1 < n; i++ {
			j := i + length - 1
			cost[i][j] = math.Inf(1)
			for k := i; k < j; k++ {
				c := cost[i][k] + cost[k+1][j] +
					float64(dims[i])*float64(dims[k+1])*float64(dims[j+1])
				if c < cost[i][j] {
					cost[i][j] = c
					split[i][j] = k
				}
			}
		}
	}
	var build func(i, j int) Expr
	build = func(i, j int) Expr {
		if i == j {
			return factors[i].expr
		}
		k := split[i][j]
		return &MatMul{L: build(i, k), R: build(k+1, j)}
	}
	return build(0, n-1), nil
}

// ChainCost exposes the DP's predicted scalar-operation count for a compiled
// ordering, for tests and EXPLAIN-style reporting: the Σ m·k·n of the
// multiplications the expression tree performs, given leaf shapes.
func ChainCost(e Expr, shapes map[string]Dims) (float64, error) {
	switch v := e.(type) {
	case *MatMul:
		lc, err := ChainCost(v.L, shapes)
		if err != nil {
			return 0, err
		}
		rc, err := ChainCost(v.R, shapes)
		if err != nil {
			return 0, err
		}
		l, okL := shapeOfExpr(v.L, shapes)
		r, okR := shapeOfExpr(v.R, shapes)
		if !okL || !okR {
			return 0, fmt.Errorf("plan: ChainCost: unresolved shape")
		}
		return lc + rc + float64(l.Rows)*float64(l.Cols)*float64(r.Cols), nil
	case *Transpose:
		return ChainCost(v.X, shapes)
	case *Scale:
		return ChainCost(v.X, shapes)
	case *Add:
		lc, err := ChainCost(v.L, shapes)
		if err != nil {
			return 0, err
		}
		rc, err := ChainCost(v.R, shapes)
		return lc + rc, err
	case *Sub:
		lc, err := ChainCost(v.L, shapes)
		if err != nil {
			return 0, err
		}
		rc, err := ChainCost(v.R, shapes)
		return lc + rc, err
	case *Hadamard:
		lc, err := ChainCost(v.L, shapes)
		if err != nil {
			return 0, err
		}
		rc, err := ChainCost(v.R, shapes)
		return lc + rc, err
	case *DivElem:
		lc, err := ChainCost(v.L, shapes)
		if err != nil {
			return 0, err
		}
		rc, err := ChainCost(v.R, shapes)
		return lc + rc, err
	default:
		return 0, nil
	}
}
