package plan

import "fmt"

// OpKind is the exported identity of a physical operator, for generic
// evaluators built with EvalWith. It mirrors the program's internal op enum
// one-to-one.
type OpKind int

const (
	// OpVar loads a bound input.
	OpVar OpKind = iota
	// OpMul is distributed matrix multiplication.
	OpMul
	// OpAdd is element-wise addition.
	OpAdd
	// OpSub is element-wise subtraction.
	OpSub
	// OpHadamard is the element-wise product.
	OpHadamard
	// OpDivElem is guarded element-wise division (Scalar carries epsilon).
	OpDivElem
	// OpTranspose is matrix transposition.
	OpTranspose
	// OpScale is scalar multiplication (Scalar carries the factor).
	OpScale
)

// String names the operator like Program.Explain does.
func (k OpKind) String() string {
	switch k {
	case OpVar:
		return "load"
	case OpMul:
		return "multiply"
	case OpAdd:
		return "add"
	case OpSub:
		return "sub"
	case OpHadamard:
		return "hadamard"
	case OpDivElem:
		return "divelem"
	case OpTranspose:
		return "transpose"
	case OpScale:
		return "scale"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// NodeInfo describes one program node to a generic evaluator.
type NodeInfo struct {
	// Kind is the operator; Unary reports whether only the first operand is
	// meaningful (OpTranspose, OpScale).
	Kind OpKind
	// Var is the bound-input name (OpVar only).
	Var string
	// Scalar is the OpScale factor or the OpDivElem epsilon.
	Scalar float64
	// Index is the node's position in the program's topological order,
	// stable across evaluations — useful for labeling spans.
	Index int
}

// Unary reports whether the node takes a single operand.
func (n NodeInfo) Unary() bool { return n.Kind == OpTranspose || n.Kind == OpScale }

// EvalWith executes a compiled program bottom-up over an arbitrary value
// type T — the generic twin of Program.Eval, for evaluators whose values are
// not driver-resident matrices (e.g. handles naming worker-resident data).
//
// binds supplies the OpVar values; apply runs every non-var node (b is the
// zero T for unary operators); release, when non-nil, is called exactly once
// for each intermediate result whose last consumer has run — never for bound
// inputs and never for the root, which the caller owns. On an apply error,
// every still-live intermediate is released before the error returns, so an
// evaluator that allocates remote state does not leak it.
func EvalWith[T any](p *Program, binds map[string]T, apply func(n NodeInfo, a, b T) (T, error), release func(T)) (T, error) {
	var zero T
	results := make([]T, len(p.nodes))
	live := make([]bool, len(p.nodes))    // holds an unreleased intermediate
	isVar := make([]bool, len(p.nodes))   // bound input: caller-owned
	remaining := make([]int, len(p.nodes)) // consumers left to run
	for i := range p.nodes {
		remaining[i] = p.nodes[i].uses
	}
	releaseAll := func() {
		if release == nil {
			return
		}
		for i := range results {
			if live[i] && !isVar[i] {
				release(results[i])
				live[i] = false
			}
		}
	}
	done := func(j int) {
		remaining[j]--
		if remaining[j] == 0 && j != p.root && !isVar[j] && live[j] {
			if release != nil {
				release(results[j])
			}
			live[j] = false
			results[j] = zero
		}
	}
	for i := range p.nodes {
		n := &p.nodes[i]
		if n.op == opVar {
			v, ok := binds[n.name]
			if !ok {
				return zero, fmt.Errorf("plan: input %q not bound", n.name)
			}
			results[i] = v
			isVar[i], live[i] = true, true
			continue
		}
		info := NodeInfo{Kind: OpKind(n.op), Scalar: n.scalar, Index: i}
		var b T
		unary := n.op == opTranspose || n.op == opScale
		if !unary {
			b = results[n.r]
		}
		out, err := apply(info, results[n.l], b)
		if err != nil {
			releaseAll()
			return zero, fmt.Errorf("plan: node %%%d (%s): %w", i, n.describe(), err)
		}
		results[i] = out
		live[i] = true
		done(n.l)
		if !unary {
			done(n.r)
		}
	}
	return results[p.root], nil
}
