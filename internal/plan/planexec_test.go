// Execution tests for compiled plans over real evaluators. These live in an
// external test package: the engine imports plan (for Engine.Run), so
// in-package tests here cannot import the engine back.
package plan_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"distme/internal/bmat"
	"distme/internal/cluster"
	"distme/internal/engine"
	"distme/internal/matrix"
	"distme/internal/plan"
	"distme/internal/systems"
)

func testEngine(t *testing.T) *engine.Engine {
	t.Helper()
	cfg := cluster.LaptopConfig()
	cfg.LocalWorkers = 4
	cfg.TaskMemBytes = 1 << 30
	cfg.DiskCapacityBytes = 0
	e, err := engine.New(engine.Config{Cluster: cfg})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// naiveEval evaluates an expression directly on dense matrices, the
// reference for every rewrite.
func naiveEval(e plan.Expr, binds map[string]*matrix.Dense) *matrix.Dense {
	switch v := e.(type) {
	case *plan.Var:
		return binds[v.Name]
	case *plan.MatMul:
		return matrix.Mul(naiveEval(v.L, binds), naiveEval(v.R, binds)).Dense()
	case *plan.Add:
		return matrix.Add(naiveEval(v.L, binds), naiveEval(v.R, binds))
	case *plan.Sub:
		return matrix.Sub(naiveEval(v.L, binds), naiveEval(v.R, binds))
	case *plan.Hadamard:
		return matrix.Hadamard(naiveEval(v.L, binds), naiveEval(v.R, binds))
	case *plan.DivElem:
		return matrix.DivElem(naiveEval(v.L, binds), naiveEval(v.R, binds), v.Eps)
	case *plan.Transpose:
		return naiveEval(v.X, binds).Transpose()
	case *plan.Scale:
		return matrix.Scale(v.S, naiveEval(v.X, binds))
	default:
		panic("unknown expr")
	}
}

func TestEvalMatchesNaiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)
		bs := 2 + rng.Intn(3)
		// Random square matrices keep every composition conformable.
		names := []string{"A", "B", "C"}
		dense := map[string]*matrix.Dense{}
		blocks := map[string]*bmat.BlockMatrix{}
		for _, name := range names {
			d := matrix.RandomDense(rng, n, n)
			dense[name] = d
			blocks[name] = bmat.FromDense(d, bs)
		}
		e := randomExpr(rng, names, 0)
		p, err := plan.Compile(e)
		if err != nil {
			return false
		}
		got, err := p.Eval(testEngineQuick(), blocks)
		if err != nil {
			return false
		}
		want := naiveEval(e, dense)
		return got.ToDense().EqualApprox(want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// testEngineQuick builds an engine without a *testing.T for quick.Check.
func testEngineQuick() *engine.Engine {
	cfg := cluster.LaptopConfig()
	cfg.LocalWorkers = 4
	cfg.TaskMemBytes = 1 << 30
	cfg.DiskCapacityBytes = 0
	e, err := engine.New(engine.Config{Cluster: cfg})
	if err != nil {
		panic(err)
	}
	return e
}

// randomExpr builds a random well-formed expression over square matrices.
func randomExpr(rng *rand.Rand, names []string, depth int) plan.Expr {
	if depth >= 3 || rng.Intn(3) == 0 {
		return plan.V(names[rng.Intn(len(names))])
	}
	switch rng.Intn(6) {
	case 0:
		return plan.Mul(randomExpr(rng, names, depth+1), randomExpr(rng, names, depth+1))
	case 1:
		return plan.Plus(randomExpr(rng, names, depth+1), randomExpr(rng, names, depth+1))
	case 2:
		return plan.Minus(randomExpr(rng, names, depth+1), randomExpr(rng, names, depth+1))
	case 3:
		return plan.EMul(randomExpr(rng, names, depth+1), randomExpr(rng, names, depth+1))
	case 4:
		return plan.T(randomExpr(rng, names, depth+1))
	default:
		return plan.Times(float64(1+rng.Intn(3)), randomExpr(rng, names, depth+1))
	}
}

func TestEvalGNMFHUpdate(t *testing.T) {
	// H' = H ∘ (Wᵀ·V) ⊘ (Wᵀ·W·H): the paper's H update as one plan.
	rng := rand.New(rand.NewSource(140))
	vD := matrix.RandomDense(rng, 12, 10)
	wD := matrix.RandomDense(rng, 12, 4)
	hD := matrix.RandomDense(rng, 4, 10)
	wt := plan.T(plan.V("W"))
	update := plan.EMul(plan.V("H"), plan.EDiv(plan.Mul(wt, plan.V("V")), plan.Mul(plan.Mul(wt, plan.V("W")), plan.V("H")), 1e-9))
	p, err := plan.Compile(update)
	if err != nil {
		t.Fatal(err)
	}
	// The shared Wᵀ must be computed once.
	if p.SharedNodes() == 0 {
		t.Fatal("expected Wᵀ to be shared")
	}
	got, err := p.Eval(testEngine(t), map[string]*bmat.BlockMatrix{
		"V": bmat.FromDense(vD, 4),
		"W": bmat.FromDense(wD, 4),
		"H": bmat.FromDense(hD, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := naiveEval(update, map[string]*matrix.Dense{"V": vD, "W": wD, "H": hD})
	if !got.ToDense().EqualApprox(want, 1e-9) {
		t.Fatal("GNMF H update via plan mismatch")
	}
}

func TestEvalMissingBinding(t *testing.T) {
	p, err := plan.Compile(plan.Mul(plan.V("A"), plan.V("B")))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(141))
	_, err = p.Eval(testEngine(t), map[string]*bmat.BlockMatrix{
		"A": bmat.RandomDense(rng, 4, 4, 2),
	})
	if err == nil {
		t.Fatal("missing binding accepted")
	}
}

func TestEvalSameOperandTwice(t *testing.T) {
	// A∘A: both consumers read the same node; memo eviction must not
	// clobber the value before the second read.
	rng := rand.New(rand.NewSource(142))
	d := matrix.RandomDense(rng, 6, 6)
	p, err := plan.Compile(plan.EMul(plan.V("A"), plan.V("A")))
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Eval(testEngine(t), map[string]*bmat.BlockMatrix{"A": bmat.FromDense(d, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if !got.ToDense().EqualApprox(matrix.Hadamard(d, d), 1e-12) {
		t.Fatal("A∘A wrong")
	}
}

// TestEvalOverSystemProfile: the same compiled plan runs under a comparison
// system's strategy chooser — the Evaluator generality.
func TestEvalOverSystemProfile(t *testing.T) {
	cfg := cluster.LaptopConfig()
	cfg.LocalWorkers = 4
	cfg.TaskMemBytes = 1 << 30
	cfg.DiskCapacityBytes = 0
	sys, err := systems.New(systems.SystemMLC, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(143))
	aD := matrix.RandomDense(rng, 12, 12)
	bD := matrix.RandomDense(rng, 12, 12)
	e := plan.Plus(plan.Mul(plan.T(plan.V("A")), plan.V("B")), plan.Times(2, plan.V("A")))
	p, err := plan.Compile(e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Eval(sys, map[string]*bmat.BlockMatrix{
		"A": bmat.FromDense(aD, 4),
		"B": bmat.FromDense(bD, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := naiveEval(e, map[string]*matrix.Dense{"A": aD, "B": bD})
	if !got.ToDense().EqualApprox(want, 1e-9) {
		t.Fatal("plan over a system profile diverged")
	}
}

// TestChainOrderPreservesValueProperty: reordering must never change the
// product — associativity executed for real on the engine.
func TestChainOrderPreservesValueProperty(t *testing.T) {
	eng := testEngineQuick()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Random chain of 3–5 conformable factors with varied dimensions.
		n := 3 + rng.Intn(3)
		dims := make([]int, n+1)
		for i := range dims {
			dims[i] = 2 + rng.Intn(10)
		}
		shapes := map[string]plan.Dims{}
		binds := map[string]*bmat.BlockMatrix{}
		dense := map[string]*matrix.Dense{}
		var expr plan.Expr
		for i := 0; i < n; i++ {
			name := string(rune('A' + i))
			d := matrix.RandomDense(rng, dims[i], dims[i+1])
			dense[name] = d
			binds[name] = bmat.FromDense(d, 3)
			shapes[name] = plan.Dims{Rows: int64(dims[i]), Cols: int64(dims[i+1])}
			if expr == nil {
				expr = plan.V(name)
			} else {
				expr = plan.Mul(expr, plan.V(name))
			}
		}
		p, err := plan.CompileWithShapes(expr, shapes)
		if err != nil {
			return false
		}
		got, err := p.Eval(eng, binds)
		if err != nil {
			return false
		}
		want := naiveEval(expr, dense)
		return got.ToDense().EqualApprox(want, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
