// Package plan is the query-plan layer of DistME's §5: users describe
// matrix computations as expressions (the paper's Scala API over SparkSQL),
// the compiler rewrites them into an optimized physical plan — pushing
// transposes to the leaves where they are cheap re-key maps, folding
// scalars, and deduplicating common subexpressions into a DAG so shared
// terms (e.g. Wᵀ in both Gram products of a GNMF update) execute once —
// and the program evaluates on an engine with memoization.
package plan

import (
	"fmt"
	"strings"
)

// Expr is a logical matrix expression node.
type Expr interface {
	// key returns a structural identity used for hash-consing; two
	// expressions with equal keys compute the same value.
	key() string
	// String renders the expression tree.
	String() string
}

// Var is a named input matrix bound at evaluation time.
type Var struct{ Name string }

func (v *Var) key() string    { return "$" + v.Name }
func (v *Var) String() string { return v.Name }

// MatMul is distributed matrix multiplication L×R.
type MatMul struct{ L, R Expr }

func (m *MatMul) key() string    { return "(mul " + m.L.key() + " " + m.R.key() + ")" }
func (m *MatMul) String() string { return "(" + m.L.String() + " × " + m.R.String() + ")" }

// Add is element-wise addition.
type Add struct{ L, R Expr }

func (a *Add) key() string    { return "(add " + a.L.key() + " " + a.R.key() + ")" }
func (a *Add) String() string { return "(" + a.L.String() + " + " + a.R.String() + ")" }

// Sub is element-wise subtraction.
type Sub struct{ L, R Expr }

func (s *Sub) key() string    { return "(sub " + s.L.key() + " " + s.R.key() + ")" }
func (s *Sub) String() string { return "(" + s.L.String() + " - " + s.R.String() + ")" }

// Hadamard is the element-wise product.
type Hadamard struct{ L, R Expr }

func (h *Hadamard) key() string    { return "(had " + h.L.key() + " " + h.R.key() + ")" }
func (h *Hadamard) String() string { return "(" + h.L.String() + " ∘ " + h.R.String() + ")" }

// DivElem is element-wise division with an epsilon denominator guard.
type DivElem struct {
	L, R Expr
	Eps  float64
}

func (d *DivElem) key() string    { return fmt.Sprintf("(div %s %s %g)", d.L.key(), d.R.key(), d.Eps) }
func (d *DivElem) String() string { return "(" + d.L.String() + " ⊘ " + d.R.String() + ")" }

// Transpose is matrix transposition.
type Transpose struct{ X Expr }

func (t *Transpose) key() string    { return "(t " + t.X.key() + ")" }
func (t *Transpose) String() string { return t.X.String() + "ᵀ" }

// Scale multiplies every element by S.
type Scale struct {
	S float64
	X Expr
}

func (s *Scale) key() string    { return fmt.Sprintf("(scale %g %s)", s.S, s.X.key()) }
func (s *Scale) String() string { return fmt.Sprintf("%g·%s", s.S, s.X.String()) }

// Constructors — the user-facing expression DSL.

// V references the input matrix bound to name at evaluation time.
func V(name string) Expr { return &Var{Name: name} }

// Mul builds L×R.
func Mul(l, r Expr) Expr { return &MatMul{L: l, R: r} }

// Plus builds L+R element-wise.
func Plus(l, r Expr) Expr { return &Add{L: l, R: r} }

// Minus builds L−R element-wise.
func Minus(l, r Expr) Expr { return &Sub{L: l, R: r} }

// EMul builds the element-wise product L∘R.
func EMul(l, r Expr) Expr { return &Hadamard{L: l, R: r} }

// EDiv builds the guarded element-wise division L⊘R.
func EDiv(l, r Expr, eps float64) Expr { return &DivElem{L: l, R: r, Eps: eps} }

// T builds the transpose Xᵀ.
func T(x Expr) Expr { return &Transpose{X: x} }

// Times builds the scalar product s·X.
func Times(s float64, x Expr) Expr { return &Scale{S: s, X: x} }

// rewrite applies the algebraic rewrites bottom-up until fixpoint:
//
//	(Xᵀ)ᵀ        → X            (involution)
//	(L×R)ᵀ       → Rᵀ×Lᵀ        (push transpose to the leaves)
//	(L+R)ᵀ       → Lᵀ+Rᵀ        (same for the element-wise family)
//	(L∘R)ᵀ       → Lᵀ∘Rᵀ
//	(s·X)ᵀ       → s·Xᵀ
//	s·(t·X)      → (s·t)·X      (scalar folding)
//	1·X          → X
//
// Pushing transposes to the leaves matters on the engine: a leaf transpose
// is a cheap block re-key map, while transposing a product would first
// materialize the product in the wrong orientation for its consumer.
func rewrite(e Expr) Expr {
	switch v := e.(type) {
	case *Var:
		return v
	case *MatMul:
		return &MatMul{L: rewrite(v.L), R: rewrite(v.R)}
	case *Add:
		return &Add{L: rewrite(v.L), R: rewrite(v.R)}
	case *Sub:
		return &Sub{L: rewrite(v.L), R: rewrite(v.R)}
	case *Hadamard:
		return &Hadamard{L: rewrite(v.L), R: rewrite(v.R)}
	case *DivElem:
		return &DivElem{L: rewrite(v.L), R: rewrite(v.R), Eps: v.Eps}
	case *Scale:
		x := rewrite(v.X)
		if inner, ok := x.(*Scale); ok {
			return rewrite(&Scale{S: v.S * inner.S, X: inner.X})
		}
		if v.S == 1 {
			return x
		}
		return &Scale{S: v.S, X: x}
	case *Transpose:
		switch inner := rewrite(v.X).(type) {
		case *Transpose:
			return inner.X // (Xᵀ)ᵀ = X, already rewritten
		case *MatMul:
			return rewrite(&MatMul{L: &Transpose{X: inner.R}, R: &Transpose{X: inner.L}})
		case *Add:
			return rewrite(&Add{L: &Transpose{X: inner.L}, R: &Transpose{X: inner.R}})
		case *Sub:
			return rewrite(&Sub{L: &Transpose{X: inner.L}, R: &Transpose{X: inner.R}})
		case *Hadamard:
			return rewrite(&Hadamard{L: &Transpose{X: inner.L}, R: &Transpose{X: inner.R}})
		case *Scale:
			return rewrite(&Scale{S: inner.S, X: &Transpose{X: inner.X}})
		default:
			return &Transpose{X: inner}
		}
	default:
		panic(fmt.Sprintf("plan: unknown expression %T", e))
	}
}

// Explain renders the optimized DAG of a compiled program, one node per
// line with shared subexpressions labeled, like a database EXPLAIN.
func (p *Program) Explain() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "plan with %d nodes (%d shared)\n", len(p.nodes), p.shared)
	for i, n := range p.nodes {
		fmt.Fprintf(&sb, "  %%%d = %s\n", i, n.describe())
	}
	return sb.String()
}
