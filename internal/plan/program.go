package plan

import (
	"fmt"

	"distme/internal/bmat"
)

// Evaluator executes the physical operators a program needs. engine.Engine
// satisfies it natively; the systems profiles and the TCP hybrid satisfy it
// too, so one compiled plan can run in-process, under a comparison system's
// strategy chooser, or with its multiplications crossing real sockets.
type Evaluator interface {
	Multiply(a, b *bmat.BlockMatrix) (*bmat.BlockMatrix, error)
	Transpose(a *bmat.BlockMatrix) (*bmat.BlockMatrix, error)
	Add(a, b *bmat.BlockMatrix) (*bmat.BlockMatrix, error)
	Sub(a, b *bmat.BlockMatrix) (*bmat.BlockMatrix, error)
	Hadamard(a, b *bmat.BlockMatrix) (*bmat.BlockMatrix, error)
	DivElem(a, b *bmat.BlockMatrix, eps float64) (*bmat.BlockMatrix, error)
	Scale(s float64, a *bmat.BlockMatrix) (*bmat.BlockMatrix, error)
}

// op identifies a physical operator.
type op int

const (
	opVar op = iota
	opMul
	opAdd
	opSub
	opHadamard
	opDivElem
	opTranspose
	opScale
)

// node is one physical-plan DAG node; inputs refer to earlier nodes, so the
// slice is a valid topological order.
type node struct {
	op     op
	name   string  // opVar
	l, r   int     // input node indices (r unused by unary ops)
	scalar float64 // opScale factor / opDivElem epsilon
	key    string
	uses   int // consumer count, for memo eviction
}

func (n *node) describe() string {
	switch n.op {
	case opVar:
		return fmt.Sprintf("load %s", n.name)
	case opMul:
		return fmt.Sprintf("multiply %%%d %%%d", n.l, n.r)
	case opAdd:
		return fmt.Sprintf("add %%%d %%%d", n.l, n.r)
	case opSub:
		return fmt.Sprintf("sub %%%d %%%d", n.l, n.r)
	case opHadamard:
		return fmt.Sprintf("hadamard %%%d %%%d", n.l, n.r)
	case opDivElem:
		return fmt.Sprintf("divelem %%%d %%%d eps=%g", n.l, n.r, n.scalar)
	case opTranspose:
		return fmt.Sprintf("transpose %%%d", n.l)
	case opScale:
		return fmt.Sprintf("scale %g %%%d", n.scalar, n.l)
	default:
		return "?"
	}
}

// Program is a compiled, optimized physical plan: a DAG in topological
// order with common subexpressions hash-consed into single nodes.
type Program struct {
	nodes  []node
	root   int
	shared int // how many node reuses CSE found
	vars   []string
}

// Compile rewrites the expression (transpose pushing, scalar folding) and
// hash-conses it into a DAG program.
func Compile(e Expr) (*Program, error) {
	if e == nil {
		return nil, fmt.Errorf("plan: nil expression")
	}
	p := &Program{}
	index := make(map[string]int)
	var build func(e Expr) int
	build = func(e Expr) int {
		k := e.key()
		if i, ok := index[k]; ok {
			p.shared++
			p.nodes[i].uses++
			return i
		}
		var n node
		n.key = k
		n.uses = 1
		switch v := e.(type) {
		case *Var:
			n.op, n.name = opVar, v.Name
		case *MatMul:
			n.op = opMul
			n.l, n.r = build(v.L), build(v.R)
		case *Add:
			n.op = opAdd
			n.l, n.r = build(v.L), build(v.R)
		case *Sub:
			n.op = opSub
			n.l, n.r = build(v.L), build(v.R)
		case *Hadamard:
			n.op = opHadamard
			n.l, n.r = build(v.L), build(v.R)
		case *DivElem:
			n.op = opDivElem
			n.l, n.r = build(v.L), build(v.R)
			n.scalar = v.Eps
		case *Transpose:
			n.op = opTranspose
			n.l = build(v.X)
		case *Scale:
			n.op = opScale
			n.l = build(v.X)
			n.scalar = v.S
		default:
			panic(fmt.Sprintf("plan: unknown expression %T", e))
		}
		i := len(p.nodes)
		p.nodes = append(p.nodes, n)
		index[k] = i
		if n.op == opVar {
			p.vars = append(p.vars, n.name)
		}
		return i
	}
	p.root = build(rewrite(e))
	return p, nil
}

// Vars lists the input names the program needs bound, in first-use order.
func (p *Program) Vars() []string { return append([]string(nil), p.vars...) }

// NumNodes returns the physical operator count after CSE.
func (p *Program) NumNodes() int { return len(p.nodes) }

// SharedNodes returns how many subexpression reuses CSE captured.
func (p *Program) SharedNodes() int { return p.shared }

// Eval executes the program on an evaluator with the given input bindings.
// Each DAG node evaluates exactly once; results are released as soon as
// their last consumer has run, bounding driver memory like Spark unpersists
// cached RDDs.
func (p *Program) Eval(eng Evaluator, binds map[string]*bmat.BlockMatrix) (*bmat.BlockMatrix, error) {
	results := make([]*bmat.BlockMatrix, len(p.nodes))
	remaining := make([]int, len(p.nodes))
	for i := range p.nodes {
		remaining[i] = p.nodes[i].uses
	}
	consume := func(i int) *bmat.BlockMatrix {
		v := results[i]
		remaining[i]--
		if remaining[i] == 0 && i != p.root {
			results[i] = nil
		}
		return v
	}
	for i := range p.nodes {
		n := &p.nodes[i]
		var out *bmat.BlockMatrix
		var err error
		switch n.op {
		case opVar:
			m, ok := binds[n.name]
			if !ok || m == nil {
				return nil, fmt.Errorf("plan: input %q not bound", n.name)
			}
			out = m
		case opMul:
			out, err = eng.Multiply(consume(n.l), consume(n.r))
		case opAdd:
			out, err = eng.Add(consume(n.l), consume(n.r))
		case opSub:
			out, err = eng.Sub(consume(n.l), consume(n.r))
		case opHadamard:
			out, err = eng.Hadamard(consume(n.l), consume(n.r))
		case opDivElem:
			out, err = eng.DivElem(consume(n.l), consume(n.r), n.scalar)
		case opTranspose:
			out, err = eng.Transpose(consume(n.l))
		case opScale:
			out, err = eng.Scale(n.scalar, consume(n.l))
		}
		if err != nil {
			return nil, fmt.Errorf("plan: node %%%d (%s): %w", i, n.describe(), err)
		}
		results[i] = out
	}
	return results[p.root], nil
}
