package plan

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestChainOrderClassic(t *testing.T) {
	// The textbook case: A(10×100)·B(100×5)·C(5×50). Left-to-right costs
	// 10·100·5 + 10·5·50 = 7500; the bad order costs 100·5·50 + 10·100·50 =
	// 75000. The DP must pick (A·B)·C.
	shapes := map[string]Dims{
		"A": {10, 100}, "B": {100, 5}, "C": {5, 50},
	}
	e := Mul(Mul(V("A"), V("B")), V("C"))
	bad := Mul(V("A"), Mul(V("B"), V("C")))

	goodCost, err := ChainCost(e, shapes)
	if err != nil {
		t.Fatal(err)
	}
	badCost, err := ChainCost(bad, shapes)
	if err != nil {
		t.Fatal(err)
	}
	if goodCost != 7500 || badCost != 75000 {
		t.Fatalf("costs = %g, %g; want 7500, 75000", goodCost, badCost)
	}

	// Compile the bad ordering with shapes: the DP must recover the good one.
	p, err := CompileWithShapes(bad, shapes)
	if err != nil {
		t.Fatal(err)
	}
	_ = p
	re, err := reassociate(rewrite(bad), shapes)
	if err != nil {
		t.Fatal(err)
	}
	reCost, err := ChainCost(re, shapes)
	if err != nil {
		t.Fatal(err)
	}
	if reCost != 7500 {
		t.Fatalf("reassociated cost = %g, want 7500 (got tree %s)", reCost, re)
	}
}

func TestChainOrderInnerMismatchRejected(t *testing.T) {
	shapes := map[string]Dims{"A": {4, 5}, "B": {6, 7}, "C": {7, 8}}
	_, err := CompileWithShapes(Mul(Mul(V("A"), V("B")), V("C")), shapes)
	if err == nil {
		t.Fatal("inner-dimension mismatch accepted")
	}
}

func TestChainOrderMissingShapesPassThrough(t *testing.T) {
	// Without shapes for B the chain must compile unreordered, not error.
	shapes := map[string]Dims{"A": {4, 4}, "C": {4, 4}}
	p, err := CompileWithShapes(Mul(Mul(V("A"), V("B")), V("C")), shapes)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumNodes() == 0 {
		t.Fatal("empty program")
	}
}

func TestChainOrderHandlesTransposedFactors(t *testing.T) {
	// Aᵀ (100×10 → 10×100 transposed) chains correctly with shape inference.
	shapes := map[string]Dims{"A": {100, 10}, "B": {100, 5}, "C": {5, 50}}
	e := Mul(Mul(T(V("A")), V("B")), V("C"))
	re, err := reassociate(rewrite(e), shapes)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := ChainCost(re, shapes)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 7500 {
		t.Fatalf("transposed chain cost = %g, want 7500", cost)
	}
}

// TestChainOrderNeverWorse: the DP ordering's predicted cost is ≤ the
// left-to-right ordering's for random chains.
func TestChainOrderNeverWorseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4)
		dims := make([]int64, n+1)
		for i := range dims {
			dims[i] = int64(1 + rng.Intn(50))
		}
		shapes := map[string]Dims{}
		var expr Expr
		for i := 0; i < n; i++ {
			name := string(rune('A' + i))
			shapes[name] = Dims{Rows: dims[i], Cols: dims[i+1]}
			if expr == nil {
				expr = V(name)
			} else {
				expr = Mul(expr, V(name))
			}
		}
		naiveCost, err := ChainCost(expr, shapes)
		if err != nil {
			return false
		}
		re, err := reassociate(rewrite(expr), shapes)
		if err != nil {
			return false
		}
		optCost, err := ChainCost(re, shapes)
		if err != nil {
			return false
		}
		return optCost <= naiveCost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
