package plan

import (
	"strings"
	"testing"
)

func TestRewriteTransposeInvolution(t *testing.T) {
	e := rewrite(T(T(V("A"))))
	if e.key() != "$A" {
		t.Fatalf("(Aᵀ)ᵀ rewrote to %s", e)
	}
}

func TestRewritePushesTransposeThroughMul(t *testing.T) {
	e := rewrite(T(Mul(V("A"), V("B"))))
	want := "(mul (t $B) (t $A))"
	if e.key() != want {
		t.Fatalf("(A×B)ᵀ rewrote to %s, want %s", e.key(), want)
	}
}

func TestRewriteDoubleTransposeOfProduct(t *testing.T) {
	// ((A×B)ᵀ)ᵀ must collapse back to A×B.
	e := rewrite(T(T(Mul(V("A"), V("B")))))
	if e.key() != "(mul $A $B)" {
		t.Fatalf("((A×B)ᵀ)ᵀ rewrote to %s", e.key())
	}
}

func TestRewriteScalarFolding(t *testing.T) {
	e := rewrite(Times(2, Times(3, V("A"))))
	if e.key() != "(scale 6 $A)" {
		t.Fatalf("2·(3·A) rewrote to %s", e.key())
	}
	if e := rewrite(Times(1, V("A"))); e.key() != "$A" {
		t.Fatalf("1·A rewrote to %s", e.key())
	}
}

func TestCompileCSE(t *testing.T) {
	// Wᵀ appears in both products; the DAG must hold a single transpose.
	wt := T(V("W"))
	e := Mul(Mul(wt, V("V")), Mul(wt, V("W")))
	p, err := Compile(e)
	if err != nil {
		t.Fatal(err)
	}
	if p.SharedNodes() == 0 {
		t.Fatal("CSE found no sharing for a shared Wᵀ")
	}
	transposes := 0
	for _, n := range p.nodes {
		if n.op == opTranspose {
			transposes++
		}
	}
	if transposes != 1 {
		t.Fatalf("plan holds %d transposes, want 1", transposes)
	}
}

func TestExplainOutput(t *testing.T) {
	p, err := Compile(Mul(T(V("A")), V("A")))
	if err != nil {
		t.Fatal(err)
	}
	s := p.Explain()
	for _, want := range []string{"load A", "transpose", "multiply"} {
		if !strings.Contains(s, want) {
			t.Fatalf("explain missing %q:\n%s", want, s)
		}
	}
	if got := p.Vars(); len(got) != 1 || got[0] != "A" {
		t.Fatalf("Vars = %v", got)
	}
}

func TestCompileNil(t *testing.T) {
	if _, err := Compile(nil); err == nil {
		t.Fatal("nil expression accepted")
	}
}
