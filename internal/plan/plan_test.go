package plan

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"distme/internal/bmat"
	"distme/internal/cluster"
	"distme/internal/engine"
	"distme/internal/matrix"
	"distme/internal/systems"
)

func testEngine(t *testing.T) *engine.Engine {
	t.Helper()
	cfg := cluster.LaptopConfig()
	cfg.LocalWorkers = 4
	cfg.TaskMemBytes = 1 << 30
	cfg.DiskCapacityBytes = 0
	e, err := engine.New(engine.Config{Cluster: cfg})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// naiveEval evaluates an expression directly on dense matrices, the
// reference for every rewrite.
func naiveEval(e Expr, binds map[string]*matrix.Dense) *matrix.Dense {
	switch v := e.(type) {
	case *Var:
		return binds[v.Name]
	case *MatMul:
		return matrix.Mul(naiveEval(v.L, binds), naiveEval(v.R, binds)).Dense()
	case *Add:
		return matrix.Add(naiveEval(v.L, binds), naiveEval(v.R, binds))
	case *Sub:
		return matrix.Sub(naiveEval(v.L, binds), naiveEval(v.R, binds))
	case *Hadamard:
		return matrix.Hadamard(naiveEval(v.L, binds), naiveEval(v.R, binds))
	case *DivElem:
		return matrix.DivElem(naiveEval(v.L, binds), naiveEval(v.R, binds), v.Eps)
	case *Transpose:
		return naiveEval(v.X, binds).Transpose()
	case *Scale:
		return matrix.Scale(v.S, naiveEval(v.X, binds))
	default:
		panic("unknown expr")
	}
}

func TestRewriteTransposeInvolution(t *testing.T) {
	e := rewrite(T(T(V("A"))))
	if e.key() != "$A" {
		t.Fatalf("(Aᵀ)ᵀ rewrote to %s", e)
	}
}

func TestRewritePushesTransposeThroughMul(t *testing.T) {
	e := rewrite(T(Mul(V("A"), V("B"))))
	want := "(mul (t $B) (t $A))"
	if e.key() != want {
		t.Fatalf("(A×B)ᵀ rewrote to %s, want %s", e.key(), want)
	}
}

func TestRewriteDoubleTransposeOfProduct(t *testing.T) {
	// ((A×B)ᵀ)ᵀ must collapse back to A×B.
	e := rewrite(T(T(Mul(V("A"), V("B")))))
	if e.key() != "(mul $A $B)" {
		t.Fatalf("((A×B)ᵀ)ᵀ rewrote to %s", e.key())
	}
}

func TestRewriteScalarFolding(t *testing.T) {
	e := rewrite(Times(2, Times(3, V("A"))))
	if e.key() != "(scale 6 $A)" {
		t.Fatalf("2·(3·A) rewrote to %s", e.key())
	}
	if e := rewrite(Times(1, V("A"))); e.key() != "$A" {
		t.Fatalf("1·A rewrote to %s", e.key())
	}
}

func TestCompileCSE(t *testing.T) {
	// Wᵀ appears in both products; the DAG must hold a single transpose.
	wt := T(V("W"))
	e := Mul(Mul(wt, V("V")), Mul(wt, V("W")))
	p, err := Compile(e)
	if err != nil {
		t.Fatal(err)
	}
	if p.SharedNodes() == 0 {
		t.Fatal("CSE found no sharing for a shared Wᵀ")
	}
	transposes := 0
	for _, n := range p.nodes {
		if n.op == opTranspose {
			transposes++
		}
	}
	if transposes != 1 {
		t.Fatalf("plan holds %d transposes, want 1", transposes)
	}
}

func TestExplainOutput(t *testing.T) {
	p, err := Compile(Mul(T(V("A")), V("A")))
	if err != nil {
		t.Fatal(err)
	}
	s := p.Explain()
	for _, want := range []string{"load A", "transpose", "multiply"} {
		if !strings.Contains(s, want) {
			t.Fatalf("explain missing %q:\n%s", want, s)
		}
	}
	if got := p.Vars(); len(got) != 1 || got[0] != "A" {
		t.Fatalf("Vars = %v", got)
	}
}

func TestEvalMatchesNaiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)
		bs := 2 + rng.Intn(3)
		// Random square matrices keep every composition conformable.
		names := []string{"A", "B", "C"}
		dense := map[string]*matrix.Dense{}
		blocks := map[string]*bmat.BlockMatrix{}
		for _, name := range names {
			d := matrix.RandomDense(rng, n, n)
			dense[name] = d
			blocks[name] = bmat.FromDense(d, bs)
		}
		e := randomExpr(rng, names, 0)
		p, err := Compile(e)
		if err != nil {
			return false
		}
		got, err := p.Eval(testEngineQuick(), blocks)
		if err != nil {
			return false
		}
		want := naiveEval(e, dense)
		return got.ToDense().EqualApprox(want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// testEngineQuick builds an engine without a *testing.T for quick.Check.
func testEngineQuick() *engine.Engine {
	cfg := cluster.LaptopConfig()
	cfg.LocalWorkers = 4
	cfg.TaskMemBytes = 1 << 30
	cfg.DiskCapacityBytes = 0
	e, err := engine.New(engine.Config{Cluster: cfg})
	if err != nil {
		panic(err)
	}
	return e
}

// randomExpr builds a random well-formed expression over square matrices.
func randomExpr(rng *rand.Rand, names []string, depth int) Expr {
	if depth >= 3 || rng.Intn(3) == 0 {
		return V(names[rng.Intn(len(names))])
	}
	switch rng.Intn(6) {
	case 0:
		return Mul(randomExpr(rng, names, depth+1), randomExpr(rng, names, depth+1))
	case 1:
		return Plus(randomExpr(rng, names, depth+1), randomExpr(rng, names, depth+1))
	case 2:
		return Minus(randomExpr(rng, names, depth+1), randomExpr(rng, names, depth+1))
	case 3:
		return EMul(randomExpr(rng, names, depth+1), randomExpr(rng, names, depth+1))
	case 4:
		return T(randomExpr(rng, names, depth+1))
	default:
		return Times(float64(1+rng.Intn(3)), randomExpr(rng, names, depth+1))
	}
}

func TestEvalGNMFHUpdate(t *testing.T) {
	// H' = H ∘ (Wᵀ·V) ⊘ (Wᵀ·W·H): the paper's H update as one plan.
	rng := rand.New(rand.NewSource(140))
	vD := matrix.RandomDense(rng, 12, 10)
	wD := matrix.RandomDense(rng, 12, 4)
	hD := matrix.RandomDense(rng, 4, 10)
	wt := T(V("W"))
	update := EMul(V("H"), EDiv(Mul(wt, V("V")), Mul(Mul(wt, V("W")), V("H")), 1e-9))
	p, err := Compile(update)
	if err != nil {
		t.Fatal(err)
	}
	// The shared Wᵀ must be computed once.
	if p.SharedNodes() == 0 {
		t.Fatal("expected Wᵀ to be shared")
	}
	got, err := p.Eval(testEngine(t), map[string]*bmat.BlockMatrix{
		"V": bmat.FromDense(vD, 4),
		"W": bmat.FromDense(wD, 4),
		"H": bmat.FromDense(hD, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := naiveEval(update, map[string]*matrix.Dense{"V": vD, "W": wD, "H": hD})
	if !got.ToDense().EqualApprox(want, 1e-9) {
		t.Fatal("GNMF H update via plan mismatch")
	}
}

func TestEvalMissingBinding(t *testing.T) {
	p, err := Compile(Mul(V("A"), V("B")))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(141))
	_, err = p.Eval(testEngine(t), map[string]*bmat.BlockMatrix{
		"A": bmat.RandomDense(rng, 4, 4, 2),
	})
	if err == nil {
		t.Fatal("missing binding accepted")
	}
}

func TestCompileNil(t *testing.T) {
	if _, err := Compile(nil); err == nil {
		t.Fatal("nil expression accepted")
	}
}

func TestEvalSameOperandTwice(t *testing.T) {
	// A∘A: both consumers read the same node; memo eviction must not
	// clobber the value before the second read.
	rng := rand.New(rand.NewSource(142))
	d := matrix.RandomDense(rng, 6, 6)
	p, err := Compile(EMul(V("A"), V("A")))
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Eval(testEngine(t), map[string]*bmat.BlockMatrix{"A": bmat.FromDense(d, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if !got.ToDense().EqualApprox(matrix.Hadamard(d, d), 1e-12) {
		t.Fatal("A∘A wrong")
	}
}

// TestEvalOverSystemProfile: the same compiled plan runs under a comparison
// system's strategy chooser — the Evaluator generality.
func TestEvalOverSystemProfile(t *testing.T) {
	cfg := cluster.LaptopConfig()
	cfg.LocalWorkers = 4
	cfg.TaskMemBytes = 1 << 30
	cfg.DiskCapacityBytes = 0
	sys, err := systems.New(systems.SystemMLC, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(143))
	aD := matrix.RandomDense(rng, 12, 12)
	bD := matrix.RandomDense(rng, 12, 12)
	e := Plus(Mul(T(V("A")), V("B")), Times(2, V("A")))
	p, err := Compile(e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Eval(sys, map[string]*bmat.BlockMatrix{
		"A": bmat.FromDense(aD, 4),
		"B": bmat.FromDense(bD, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := naiveEval(e, map[string]*matrix.Dense{"A": aD, "B": bD})
	if !got.ToDense().EqualApprox(want, 1e-9) {
		t.Fatal("plan over a system profile diverged")
	}
}
