package systems

import (
	"math/rand"
	"testing"

	"distme/internal/bmat"
	"distme/internal/cluster"
	"distme/internal/core"
	"distme/internal/engine"
	"distme/internal/matrix"
)

func testCluster() cluster.Config {
	cfg := cluster.LaptopConfig()
	cfg.LocalWorkers = 4
	cfg.TaskMemBytes = 1 << 30
	cfg.DiskCapacityBytes = 0
	return cfg
}

func TestAllProfilesComputeSameProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	a := bmat.RandomSparse(rng, 16, 12, 4, 0.4)
	b := bmat.RandomDense(rng, 12, 16, 4)
	want := matrix.Mul(a.ToDense(), b.ToDense()).Dense()
	for _, p := range All() {
		sys, err := New(p, testCluster())
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		got, err := sys.Multiply(a, b)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if !got.ToDense().EqualApprox(want, 1e-9) {
			t.Errorf("%s: wrong product", p.Name)
		}
	}
}

func TestSystemMLChooserMatchesPaper(t *testing.T) {
	cfg := cluster.PaperConfig()
	// Fig 7(a) general matrices: B too big to broadcast per task → CPMM.
	general := core.Shape{I: 40, J: 40, K: 40, ABytes: 12.8e9, BBytes: 12.8e9, CBytes: 12.8e9}
	if opt := chooseSystemML(general, cfg); opt.Method != engine.MethodCPMM {
		t.Fatalf("general matrices: SystemML chose %v, want CPMM", opt.Method)
	}
	// Fig 7(c) two large dimensions: |C| enormous → RMM (the paper:
	// "MatFast uses CPMM, while SystemML uses RMM").
	twoLarge := core.Shape{I: 1000, J: 1000, K: 1, ABytes: 8e9, BBytes: 8e9, CBytes: 8e12}
	if opt := chooseSystemML(twoLarge, cfg); opt.Method != engine.MethodRMM {
		t.Fatalf("two large dims: SystemML chose %v, want RMM", opt.Method)
	}
	if opt := chooseMatFast(twoLarge, cfg); opt.Method != engine.MethodCPMM {
		t.Fatalf("two large dims: MatFast chose %v, want CPMM", opt.Method)
	}
	// Small matrices: broadcast.
	small := core.Shape{I: 4, J: 4, K: 4, ABytes: 1e6, BBytes: 1e6, CBytes: 1e6}
	if opt := chooseSystemML(small, cfg); opt.Method != engine.MethodBMM {
		t.Fatalf("small matrices: SystemML chose %v, want BMM", opt.Method)
	}
	if opt := chooseMatFast(small, cfg); opt.Method != engine.MethodBMM {
		t.Fatalf("small matrices: MatFast chose %v, want BMM", opt.Method)
	}
}

func TestDistMEChooserIsAuto(t *testing.T) {
	s := core.Shape{I: 10, J: 10, K: 10, ABytes: 1, BBytes: 1, CBytes: 1}
	if opt := chooseDistME(s, cluster.PaperConfig()); opt.Method != engine.MethodAuto {
		t.Fatalf("DistME chose %v, want MethodAuto", opt.Method)
	}
}

func TestProfileFlags(t *testing.T) {
	if !DistMEG.UseGPU || DistMEC.UseGPU {
		t.Fatal("GPU flags wrong on DistME profiles")
	}
	if !DMac.TrackLayouts {
		t.Fatal("DMac must track layouts")
	}
	if SystemMLC.TrackLayouts {
		t.Fatal("SystemML must not track layouts")
	}
	if len(All()) != 7 {
		t.Fatalf("All() lists %d systems, want 7 (Figure 8)", len(All()))
	}
}

// TestDistMEMovesLessThanSystemML reproduces the Figure 7(f) ordering on a
// general-matrices workload at laptop scale: DistME's cuboid choice shuffles
// less than SystemML's CPMM.
func TestDistMEMovesLessThanSystemML(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	a := bmat.RandomDense(rng, 36, 36, 3)
	b := bmat.RandomDense(rng, 36, 36, 3)
	cfg := testCluster()
	cfg.Nodes, cfg.TasksPerNode = 3, 3
	cfg.TaskMemBytes = 64 << 10 // tight enough that strategy matters

	run := func(p Profile) int64 {
		sys, err := New(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		_, rep, err := sys.MultiplyReport(a, b)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		return rep.Comm.CommunicationBytes()
	}
	sysml := run(SystemMLC)
	distme := run(DistMEC)
	if distme >= sysml {
		t.Fatalf("DistME moved %d, SystemML %d: expected DistME lower", distme, sysml)
	}
}

func TestMatFastOOMOnOutputHeavyShape(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	// Two large dimensions with small K: B is too big to broadcast, so
	// MatFast falls back to CPMM, whose tiny task count concentrates the
	// huge |C| in few tasks → O.O.M., while DistME survives via (P,Q,1).
	a := bmat.RandomDense(rng, 96, 4, 2)
	b := bmat.RandomDense(rng, 4, 96, 2)
	cfg := testCluster()
	cfg.Nodes, cfg.TasksPerNode = 2, 2
	cfg.TaskMemBytes = 4 << 10

	mf, err := New(MatFastC, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mf.Multiply(a, b); err == nil {
		t.Fatal("MatFast should fail on output-heavy shape")
	}

	dm, err := New(DistMEC, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dm.Multiply(a, b)
	if err != nil {
		t.Fatalf("DistME failed where it should survive: %v", err)
	}
	want := matrix.Mul(a.ToDense(), b.ToDense()).Dense()
	if !got.ToDense().EqualApprox(want, 1e-9) {
		t.Fatal("DistME product wrong")
	}
}

func TestSystemDelegates(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	sys, err := New(DistMEC, testCluster())
	if err != nil {
		t.Fatal(err)
	}
	a := bmat.RandomDense(rng, 8, 8, 4)
	tr, err := sys.Transpose(a)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.ToDense().Equal(a.ToDense().Transpose()) {
		t.Fatal("Transpose delegate wrong")
	}
	h, err := sys.Hadamard(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if !h.ToDense().EqualApprox(matrix.Hadamard(a.ToDense(), a.ToDense()), 1e-12) {
		t.Fatal("Hadamard delegate wrong")
	}
	d, err := sys.DivElem(a, a, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !d.ToDense().EqualApprox(matrix.DivElem(a.ToDense(), a.ToDense(), 1e-12), 1e-12) {
		t.Fatal("DivElem delegate wrong")
	}
}
