// Package systems reproduces the comparison systems of the paper's §6.3 and
// §6.4 as strategy profiles over the shared engine: SystemML and MatFast
// (with and without the GPU retrofit the authors applied), DMac, and DistME
// itself. Each profile implements the system's published multiplication-
// method chooser; what §6.3/6.4 measure is exactly this choice plus layout
// reuse, so running the choosers on one engine isolates the comparison the
// paper makes.
package systems

import (
	"fmt"

	"distme/internal/bmat"
	"distme/internal/cluster"
	"distme/internal/core"
	"distme/internal/engine"
)

// Profile describes one comparison system.
type Profile struct {
	// Name as the paper's figures label it, e.g. "SystemML(C)".
	Name string
	// TrackLayouts enables matrix-dependency reuse (DMac, MatFast, DistME).
	TrackLayouts bool
	// UseGPU enables the GPU local-multiplication path — the "(G)"
	// variants.
	UseGPU bool
	// Choose picks the multiplication strategy for one product.
	Choose func(s core.Shape, cfg cluster.Config) engine.MulOptions
}

// chooseSystemML is SystemML's multiplication chooser: broadcast (BMM) when
// the smaller input fits in a task's budget, cross-product (CPMM) when the
// per-task output fits, replication (RMM) otherwise.
func chooseSystemML(s core.Shape, cfg cluster.Config) engine.MulOptions {
	if fitsBMM(s, cfg) {
		return engine.MulOptions{Method: engine.MethodBMM}
	}
	if fitsCPMM(s, cfg) {
		return engine.MulOptions{Method: engine.MethodCPMM}
	}
	return engine.MulOptions{Method: engine.MethodRMM}
}

// chooseMatFast is MatFast's (naive-version) chooser: BMM for broadcastable
// inputs, CPMM otherwise — no RMM fallback, which is why it hits O.O.M. on
// output-heavy shapes (Figure 7(c)).
func chooseMatFast(s core.Shape, cfg cluster.Config) engine.MulOptions {
	if fitsBMM(s, cfg) {
		return engine.MulOptions{Method: engine.MethodBMM}
	}
	return engine.MulOptions{Method: engine.MethodCPMM}
}

// chooseDistME is DistME's chooser: the Eq.(2) optimizer.
func chooseDistME(core.Shape, cluster.Config) engine.MulOptions {
	return engine.MulOptions{Method: engine.MethodAuto}
}

// fitsBMM checks whether broadcasting B is safe, using the conservative
// Table 2 estimate |A|/T + |B| + |C|/T ≤ θt — SystemML's broadcast decision
// requires the broadcast operand to fit the per-executor budget.
func fitsBMM(s core.Shape, cfg cluster.Config) bool {
	return s.MemBytes(s.BMMParams()) <= float64(cfg.TaskMemBytes)
}

// fitsCPMM checks CPMM's physical working set: a CPMM task holds its input
// slices (|A|+|B|)/K and streams partial C blocks straight into the
// aggregation shuffle, which is how CPMM survives |C| ≫ θt on general
// matrices (§6.2) yet dies when a single input slice outgrows the budget.
func fitsCPMM(s core.Shape, cfg cluster.Config) bool {
	inputs := float64(s.ABytes+s.BBytes) / float64(s.K)
	return inputs <= float64(cfg.TaskMemBytes)
}

// Profiles.
var (
	// SystemMLC is SystemML on CPUs.
	SystemMLC = Profile{Name: "SystemML(C)", Choose: chooseSystemML}
	// SystemMLG is the authors' GPU retrofit of SystemML.
	SystemMLG = Profile{Name: "SystemML(G)", Choose: chooseSystemML, UseGPU: true}
	// MatFastC is the naive MatFast on CPUs.
	MatFastC = Profile{Name: "MatFast(C)", Choose: chooseMatFast, TrackLayouts: true}
	// MatFastG is the authors' GPU retrofit of MatFast.
	MatFastG = Profile{Name: "MatFast(G)", Choose: chooseMatFast, TrackLayouts: true, UseGPU: true}
	// DMac exploits matrix dependencies on top of a CPMM/BMM chooser.
	DMac = Profile{Name: "DMac", Choose: chooseMatFast, TrackLayouts: true}
	// DistMEC is this paper's system on CPUs.
	DistMEC = Profile{Name: "DistME(C)", Choose: chooseDistME, TrackLayouts: true}
	// DistMEG is this paper's system with GPU acceleration.
	DistMEG = Profile{Name: "DistME(G)", Choose: chooseDistME, TrackLayouts: true, UseGPU: true}
)

// All lists the seven systems of Figure 8.
func All() []Profile {
	return []Profile{MatFastC, MatFastG, SystemMLC, SystemMLG, DMac, DistMEC, DistMEG}
}

// System is a comparison system instantiated on a cluster: a profile bound
// to an engine.
type System struct {
	Profile Profile
	Engine  *engine.Engine
}

// New instantiates a profile on the given cluster envelope.
func New(p Profile, clusterCfg cluster.Config) (*System, error) {
	e, err := engine.New(engine.Config{
		Cluster:      clusterCfg,
		UseGPU:       p.UseGPU,
		TrackLayouts: p.TrackLayouts,
	})
	if err != nil {
		return nil, fmt.Errorf("systems: %s: %w", p.Name, err)
	}
	return &System{Profile: p, Engine: e}, nil
}

// Multiply runs one product with the system's own strategy choice.
func (s *System) Multiply(a, b *bmat.BlockMatrix) (*bmat.BlockMatrix, error) {
	c, _, err := s.MultiplyReport(a, b)
	return c, err
}

// MultiplyReport runs one product and returns the engine report, which
// records the strategy the system chose and the traffic it caused.
func (s *System) MultiplyReport(a, b *bmat.BlockMatrix) (*bmat.BlockMatrix, *engine.Report, error) {
	opts := s.Profile.Choose(core.ShapeOf(a, b), s.Engine.Cluster().Config())
	return s.Engine.MultiplyOpt(a, b, opts)
}

// Transpose delegates to the engine.
func (s *System) Transpose(a *bmat.BlockMatrix) (*bmat.BlockMatrix, error) {
	return s.Engine.Transpose(a)
}

// Hadamard delegates to the engine.
func (s *System) Hadamard(a, b *bmat.BlockMatrix) (*bmat.BlockMatrix, error) {
	return s.Engine.Hadamard(a, b)
}

// DivElem delegates to the engine.
func (s *System) DivElem(a, b *bmat.BlockMatrix, eps float64) (*bmat.BlockMatrix, error) {
	return s.Engine.DivElem(a, b, eps)
}

// Add delegates to the engine.
func (s *System) Add(a, b *bmat.BlockMatrix) (*bmat.BlockMatrix, error) {
	return s.Engine.Add(a, b)
}

// Sub delegates to the engine.
func (s *System) Sub(a, b *bmat.BlockMatrix) (*bmat.BlockMatrix, error) {
	return s.Engine.Sub(a, b)
}

// Scale delegates to the engine.
func (s *System) Scale(f float64, a *bmat.BlockMatrix) (*bmat.BlockMatrix, error) {
	return s.Engine.Scale(f, a)
}
