package distme_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"distme"
)

func laptopEngine(t *testing.T) *distme.Engine {
	t.Helper()
	cfg := distme.LaptopCluster()
	cfg.LocalWorkers = 4
	cfg.TaskMemBytes = 1 << 30
	cfg.DiskCapacityBytes = 0
	e, err := distme.NewEngine(distme.EngineConfig{Cluster: cfg})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestQuickstartFlow(t *testing.T) {
	e := laptopEngine(t)
	rng := rand.New(rand.NewSource(1))
	a := distme.RandomDense(rng, 64, 48, 8)
	b := distme.RandomDense(rng, 48, 32, 8)
	c, report, err := e.MultiplyOpt(a, b, distme.MulOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Rows != 64 || c.Cols != 32 {
		t.Fatalf("C is %dx%d", c.Rows, c.Cols)
	}
	if report.Params.Tasks() < 1 {
		t.Fatal("report missing params")
	}
	if report.Comm.CommunicationBytes() <= 0 {
		t.Fatal("report missing communication accounting")
	}
}

func TestPublicIdentityMultiply(t *testing.T) {
	e := laptopEngine(t)
	rng := rand.New(rand.NewSource(2))
	a := distme.RandomSparse(rng, 40, 40, 8, 0.2)
	id := distme.Identity(40, 8)
	c, err := e.Multiply(a, id)
	if err != nil {
		t.Fatal(err)
	}
	if !c.ToDense().EqualApprox(a.ToDense(), 1e-12) {
		t.Fatal("A×I != A through the public API")
	}
}

func TestPublicOptimize(t *testing.T) {
	s := distme.Shape{I: 10, J: 10, K: 10, ABytes: 1 << 24, BBytes: 1 << 24, CBytes: 1 << 24}
	p, err := distme.Optimize(s, 1<<22, 16)
	if err != nil {
		t.Fatal(err)
	}
	if p.Tasks() < 16 {
		t.Fatalf("params %v underuse the 16 slots", p)
	}
	if s.MemBytes(p) > float64(1<<22) {
		t.Fatalf("params %v violate the budget", p)
	}
}

func TestPublicGNMF(t *testing.T) {
	e := laptopEngine(t)
	rng := rand.New(rand.NewSource(3))
	scaled := distme.Netflix.Scaled(0.002)
	v := scaled.RatingMatrix(rng, 16)
	res, err := distme.GNMF(e, v, distme.GNMFOptions{Rank: 4, Iterations: 2, Seed: 1, TrackObjective: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Objectives[1] > res.Objectives[0]*(1+1e-9) {
		t.Fatal("objective increased")
	}
}

func TestPublicStorageRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := distme.RandomSparse(rng, 30, 30, 8, 0.2)
	var buf bytes.Buffer
	if err := distme.SaveMatrix(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := distme.LoadMatrix(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ToDense().Equal(m.ToDense()) {
		t.Fatal("round trip changed values")
	}
}

func TestPublicGPUPath(t *testing.T) {
	cfg := distme.LaptopCluster()
	cfg.LocalWorkers = 4
	cfg.TaskMemBytes = 1 << 30
	cfg.DiskCapacityBytes = 0
	e, err := distme.NewEngine(distme.EngineConfig{Cluster: cfg, UseGPU: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	a := distme.RandomDense(rng, 32, 32, 8)
	b := distme.RandomDense(rng, 32, 32, 8)
	_, report, err := e.MultiplyOpt(a, b, distme.MulOptions{Method: distme.MethodCPMM})
	if err != nil {
		t.Fatal(err)
	}
	if report.GPU.Kernels == 0 {
		t.Fatal("GPU path inactive")
	}
	if u := report.GPU.Utilization(); u <= 0 || u > 1 {
		t.Fatalf("utilization %g out of range", u)
	}
}

func TestPaperClusterConstants(t *testing.T) {
	cfg := distme.PaperCluster()
	if cfg.Slots() != 90 {
		t.Fatalf("paper cluster slots = %d", cfg.Slots())
	}
	spec := distme.PaperGPU()
	if spec.MemPerTaskBytes != 1e9 {
		t.Fatalf("paper θg = %d", spec.MemPerTaskBytes)
	}
}

func TestPublicPlanAPI(t *testing.T) {
	e := laptopEngine(t)
	rng := rand.New(rand.NewSource(6))
	a := distme.RandomDense(rng, 16, 16, 4)
	b := distme.RandomDense(rng, 16, 16, 4)
	// (A×B)ᵀ through the planner must equal Bᵀ×Aᵀ computed directly.
	prog, err := distme.CompilePlan(distme.PlanT(distme.PlanMul(distme.PlanVar("A"), distme.PlanVar("B"))))
	if err != nil {
		t.Fatal(err)
	}
	got, err := prog.Eval(e, map[string]*distme.Matrix{"A": a, "B": b})
	if err != nil {
		t.Fatal(err)
	}
	bt, err := e.Transpose(b)
	if err != nil {
		t.Fatal(err)
	}
	at, err := e.Transpose(a)
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Multiply(bt, at)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ToDense().EqualApprox(want.ToDense(), 1e-9) {
		t.Fatal("plan (A×B)ᵀ != Bᵀ×Aᵀ")
	}
}

func TestPublicPageRank(t *testing.T) {
	e := laptopEngine(t)
	rng := rand.New(rand.NewSource(7))
	adj := distme.RandomSparse(rng, 32, 32, 8, 0.1)
	res, err := distme.PageRank(e, adj, distme.PageRankOptions{MaxIterations: 50})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i := 0; i < 32; i++ {
		sum += res.Ranks.At(i, 0)
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("rank mass %g", sum)
	}
}

func TestPublicLoadRatings(t *testing.T) {
	v, err := distme.LoadRatings(strings.NewReader("1\t2\t4.5\n3\t2\t1.0\n"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if v.NNZ() != 2 {
		t.Fatalf("nnz = %d", v.NNZ())
	}
}

func TestPublicGNMFPlanned(t *testing.T) {
	e := laptopEngine(t)
	rng := rand.New(rand.NewSource(8))
	v := distme.Netflix.Scaled(0.001).RatingMatrix(rng, 8)
	res, err := distme.GNMFPlanned(e, v, distme.GNMFOptions{Rank: 2, Iterations: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.W == nil || res.H == nil {
		t.Fatal("missing factors")
	}
}

func TestPublicALSAndSVD(t *testing.T) {
	e := laptopEngine(t)
	rng := rand.New(rand.NewSource(9))
	v := distme.RandomDense(rng, 24, 24, 8)
	als, err := distme.ALS(e, v, distme.ALSOptions{Rank: 3, Iterations: 3, Lambda: 0.1, Seed: 1, TrackObjective: true})
	if err != nil {
		t.Fatal(err)
	}
	if als.Objectives[2] > als.Objectives[0] {
		t.Fatal("ALS objective rose")
	}
	svd, err := distme.SVD(e, v, distme.SVDOptions{Rank: 3, Oversample: 3, PowerIterations: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(svd.S) != 3 || svd.S[0] <= 0 {
		t.Fatalf("SVD values: %v", svd.S)
	}
}
