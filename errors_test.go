package distme_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"distme"
)

// Each sentinel is exercised end-to-end: a public API call is driven into
// the failure mode and the returned error must match via errors.Is through
// every layer of wrapping.

func chaosEngine(t *testing.T, f distme.Faults) *distme.Engine {
	t.Helper()
	cfg := distme.LaptopCluster()
	cfg.LocalWorkers = 4
	cfg.TaskMemBytes = 1 << 30
	cfg.DiskCapacityBytes = 0
	cfg.TaskRetries = 4
	cfg.RetryBackoff = 100 * time.Microsecond
	cfg.Faults = f
	e, err := distme.NewEngine(distme.EngineConfig{Cluster: cfg})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestErrTaskOOM(t *testing.T) {
	cfg := distme.LaptopCluster()
	cfg.TaskMemBytes = 1 << 10 // θt far below any real cuboid
	e, err := distme.NewEngine(distme.EngineConfig{Cluster: cfg})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	a := distme.RandomDense(rng, 64, 64, 16)
	b := distme.RandomDense(rng, 64, 64, 16)
	_, _, err = e.MultiplyOpt(a, b, distme.MulOptions{
		Method: distme.MethodCuboid, Params: distme.Params{P: 1, Q: 1, R: 1},
	})
	if !errors.Is(err, distme.ErrTaskOOM) {
		t.Fatalf("want ErrTaskOOM, got %v", err)
	}
}

func TestErrNoFeasibleParams(t *testing.T) {
	_, err := distme.Optimize(distme.Shape{I: 8, J: 8, K: 8,
		ABytes: 1 << 40, BBytes: 1 << 40, CBytes: 1 << 40}, 1<<10, 1)
	if !errors.Is(err, distme.ErrNoFeasibleParams) {
		t.Fatalf("want ErrNoFeasibleParams, got %v", err)
	}
}

func TestErrShapeMismatch(t *testing.T) {
	e := chaosEngine(t, distme.Faults{})
	rng := rand.New(rand.NewSource(2))
	a := distme.RandomDense(rng, 8, 8, 4)
	b := distme.RandomDense(rng, 12, 8, 4) // inner dims disagree
	if _, err := e.Multiply(a, b); !errors.Is(err, distme.ErrShapeMismatch) {
		t.Fatalf("want ErrShapeMismatch from multiply, got %v", err)
	}
	if _, err := e.Add(a, b); !errors.Is(err, distme.ErrShapeMismatch) {
		t.Fatalf("want ErrShapeMismatch from add, got %v", err)
	}
}

func TestErrRetriesExhausted(t *testing.T) {
	// Crash every attempt and forbid retries from outlasting the faults.
	e := chaosEngine(t, distme.Faults{Seed: 1, CrashRate: 1, MaxFaultsPerTask: 100})
	rng := rand.New(rand.NewSource(3))
	a := distme.RandomDense(rng, 8, 8, 4)
	b := distme.RandomDense(rng, 8, 8, 4)
	_, _, err := e.MultiplyOpt(a, b, distme.MulOptions{
		Method: distme.MethodCuboid, Params: distme.Params{P: 1, Q: 1, R: 1},
	})
	if !errors.Is(err, distme.ErrRetriesExhausted) {
		t.Fatalf("want ErrRetriesExhausted, got %v", err)
	}
}

func TestErrCancelled(t *testing.T) {
	e := chaosEngine(t, distme.Faults{})
	rng := rand.New(rand.NewSource(4))
	a := distme.RandomDense(rng, 8, 8, 4)
	b := distme.RandomDense(rng, 8, 8, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := e.MultiplyCtx(ctx, a, b, distme.MulOptions{})
	if !errors.Is(err, distme.ErrCancelled) {
		t.Fatalf("want ErrCancelled, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ErrCancelled should wrap ctx.Err(), got %v", err)
	}
}

func TestErrEngineClosed(t *testing.T) {
	e := chaosEngine(t, distme.Faults{})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	a := distme.RandomDense(rng, 8, 8, 4)
	if _, err := e.Multiply(a, a); !errors.Is(err, distme.ErrEngineClosed) {
		t.Fatalf("want ErrEngineClosed, got %v", err)
	}
}

func TestErrUnknownMethod(t *testing.T) {
	e := chaosEngine(t, distme.Faults{})
	rng := rand.New(rand.NewSource(6))
	a := distme.RandomDense(rng, 8, 8, 4)
	_, _, err := e.MultiplyOpt(a, a, distme.MulOptions{Method: distme.Method(42)})
	if !errors.Is(err, distme.ErrUnknownMethod) {
		t.Fatalf("want ErrUnknownMethod, got %v", err)
	}
}

// TestElasticReportThroughPublicAPI runs a chaos multiply through the root
// package and checks the elastic counters surface on the report.
func TestElasticReportThroughPublicAPI(t *testing.T) {
	e := chaosEngine(t, distme.Faults{Seed: 9, CrashRate: 0.5})
	rng := rand.New(rand.NewSource(7))
	a := distme.RandomDense(rng, 16, 16, 4)
	b := distme.RandomDense(rng, 16, 16, 4)
	_, report, err := e.MultiplyOpt(a, b, distme.MulOptions{
		Method: distme.MethodCuboid, Params: distme.Params{P: 2, Q: 2, R: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Elastic.FaultsInjected == 0 || report.Elastic.TaskRetries == 0 {
		t.Fatalf("chaos run should surface elastic work on the report, got %+v", report.Elastic)
	}
}
