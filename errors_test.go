package distme_test

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"net/rpc"
	"testing"
	"time"

	"distme"
	"distme/internal/distnet"
	"distme/internal/ml"
)

// Each sentinel is exercised end-to-end: a public API call is driven into
// the failure mode and the returned error must match via errors.Is through
// every layer of wrapping.

func chaosEngine(t *testing.T, f distme.Faults) *distme.Engine {
	t.Helper()
	cfg := distme.LaptopCluster()
	cfg.LocalWorkers = 4
	cfg.TaskMemBytes = 1 << 30
	cfg.DiskCapacityBytes = 0
	cfg.TaskRetries = 4
	cfg.RetryBackoff = 100 * time.Microsecond
	cfg.Faults = f
	e, err := distme.NewEngine(distme.EngineConfig{Cluster: cfg})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestErrTaskOOM(t *testing.T) {
	cfg := distme.LaptopCluster()
	cfg.TaskMemBytes = 1 << 10 // θt far below any real cuboid
	e, err := distme.NewEngine(distme.EngineConfig{Cluster: cfg})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	a := distme.RandomDense(rng, 64, 64, 16)
	b := distme.RandomDense(rng, 64, 64, 16)
	_, _, err = e.MultiplyOpt(a, b, distme.MulOptions{
		Method: distme.MethodCuboid, Params: distme.Params{P: 1, Q: 1, R: 1},
	})
	if !errors.Is(err, distme.ErrTaskOOM) {
		t.Fatalf("want ErrTaskOOM, got %v", err)
	}
}

func TestErrNoFeasibleParams(t *testing.T) {
	_, err := distme.Optimize(distme.Shape{I: 8, J: 8, K: 8,
		ABytes: 1 << 40, BBytes: 1 << 40, CBytes: 1 << 40}, 1<<10, 1)
	if !errors.Is(err, distme.ErrNoFeasibleParams) {
		t.Fatalf("want ErrNoFeasibleParams, got %v", err)
	}
}

func TestErrShapeMismatch(t *testing.T) {
	e := chaosEngine(t, distme.Faults{})
	rng := rand.New(rand.NewSource(2))
	a := distme.RandomDense(rng, 8, 8, 4)
	b := distme.RandomDense(rng, 12, 8, 4) // inner dims disagree
	if _, err := e.Multiply(a, b); !errors.Is(err, distme.ErrShapeMismatch) {
		t.Fatalf("want ErrShapeMismatch from multiply, got %v", err)
	}
	if _, err := e.Add(a, b); !errors.Is(err, distme.ErrShapeMismatch) {
		t.Fatalf("want ErrShapeMismatch from add, got %v", err)
	}
}

func TestErrRetriesExhausted(t *testing.T) {
	// Crash every attempt and forbid retries from outlasting the faults.
	e := chaosEngine(t, distme.Faults{Seed: 1, CrashRate: 1, MaxFaultsPerTask: 100})
	rng := rand.New(rand.NewSource(3))
	a := distme.RandomDense(rng, 8, 8, 4)
	b := distme.RandomDense(rng, 8, 8, 4)
	_, _, err := e.MultiplyOpt(a, b, distme.MulOptions{
		Method: distme.MethodCuboid, Params: distme.Params{P: 1, Q: 1, R: 1},
	})
	if !errors.Is(err, distme.ErrRetriesExhausted) {
		t.Fatalf("want ErrRetriesExhausted, got %v", err)
	}
}

func TestErrCancelled(t *testing.T) {
	e := chaosEngine(t, distme.Faults{})
	rng := rand.New(rand.NewSource(4))
	a := distme.RandomDense(rng, 8, 8, 4)
	b := distme.RandomDense(rng, 8, 8, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := e.MultiplyCtx(ctx, a, b, distme.MulOptions{})
	if !errors.Is(err, distme.ErrCancelled) {
		t.Fatalf("want ErrCancelled, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ErrCancelled should wrap ctx.Err(), got %v", err)
	}
}

func TestErrEngineClosed(t *testing.T) {
	e := chaosEngine(t, distme.Faults{})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	a := distme.RandomDense(rng, 8, 8, 4)
	if _, err := e.Multiply(a, a); !errors.Is(err, distme.ErrEngineClosed) {
		t.Fatalf("want ErrEngineClosed, got %v", err)
	}
}

func TestErrUnknownMethod(t *testing.T) {
	e := chaosEngine(t, distme.Faults{})
	rng := rand.New(rand.NewSource(6))
	a := distme.RandomDense(rng, 8, 8, 4)
	_, _, err := e.MultiplyOpt(a, a, distme.MulOptions{Method: distme.Method(42)})
	if !errors.Is(err, distme.ErrUnknownMethod) {
		t.Fatalf("want ErrUnknownMethod, got %v", err)
	}
}

// TestElasticReportThroughPublicAPI runs a chaos multiply through the root
// package and checks the elastic counters surface on the report.
func TestElasticReportThroughPublicAPI(t *testing.T) {
	e := chaosEngine(t, distme.Faults{Seed: 9, CrashRate: 0.5})
	rng := rand.New(rand.NewSource(7))
	a := distme.RandomDense(rng, 16, 16, 4)
	b := distme.RandomDense(rng, 16, 16, 4)
	_, report, err := e.MultiplyOpt(a, b, distme.MulOptions{
		Method: distme.MethodCuboid, Params: distme.Params{P: 2, Q: 2, R: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Elastic.FaultsInjected == 0 || report.Elastic.TaskRetries == 0 {
		t.Fatalf("chaos run should surface elastic work on the report, got %+v", report.Elastic)
	}
}

// strictDistnetOpts disables every fallback and the background detector so
// the real-network failure under test surfaces as a typed error instead of
// being healed.
func strictDistnetOpts() distnet.Options {
	return distnet.Options{
		DisableHeartbeat:     true,
		DisableLocalFallback: true,
		JobAttempts:          2,
		RetryBackoff:         100 * time.Microsecond,
		MaxBackoff:           time.Millisecond,
	}
}

// TestErrWorkerDeadThroughLayers kills the whole worker pool under a running
// GNMF stack: the distnet sentinel must match at the package root after
// crossing the driver, the hybrid, and the ml layer.
func TestErrWorkerDeadThroughLayers(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w, err := distnet.Serve(l)
	if err != nil {
		t.Fatal(err)
	}
	d, err := distnet.DialOptions([]string{l.Addr().String()}, strictDistnetOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// Crash the only worker: refuse new connections, cut the live ones.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w.Shutdown(ctx)
	l.Close()

	eng := chaosEngine(t, distme.Faults{})
	hybrid := distnet.NewHybrid(d, eng, 1<<30)
	hybrid.DisableLocalFallback = true
	rng := rand.New(rand.NewSource(8))
	v := distme.RandomSparse(rng, 16, 12, 4, 0.3)
	_, err = ml.GNMF(hybrid, v, distme.GNMFOptions{Rank: 3, Iterations: 1, Seed: 1})
	if !errors.Is(err, distme.ErrWorkerDead) {
		t.Fatalf("want ErrWorkerDead through driver→hybrid→ml, got %v", err)
	}
}

// stallServer speaks the distnet worker protocol but never answers Multiply
// within any reasonable deadline.
type stallServer struct{ inner distnet.Worker }

func (s *stallServer) Ping(args *distnet.PingArgs, reply *distnet.PingReply) error {
	return s.inner.Ping(args, reply)
}

func (s *stallServer) Multiply(args *distnet.MultiplyArgs, reply *distnet.MultiplyReply) error {
	time.Sleep(2 * time.Second)
	return s.inner.Multiply(args, reply)
}

// TestErrDeadlineExceededThroughLayers points the hybrid at a worker that
// stalls every Multiply; the per-call deadline must surface as the root
// sentinel and also match context.DeadlineExceeded.
func TestErrDeadlineExceededThroughLayers(t *testing.T) {
	srv := rpc.NewServer()
	if err := srv.RegisterName(distnet.ServiceName, &stallServer{}); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go srv.ServeCodec(distnet.NewServerCodec(conn))
		}
	}()

	opts := strictDistnetOpts()
	opts.CallTimeout = 50 * time.Millisecond
	d, err := distnet.DialOptions([]string{l.Addr().String()}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	eng := chaosEngine(t, distme.Faults{})
	hybrid := distnet.NewHybrid(d, eng, 1<<30)
	hybrid.DisableLocalFallback = true
	rng := rand.New(rand.NewSource(9))
	a := distme.RandomDense(rng, 8, 8, 4)
	_, err = hybrid.Multiply(a, a)
	if !errors.Is(err, distme.ErrDeadlineExceeded) {
		t.Fatalf("want ErrDeadlineExceeded through driver→hybrid, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline error should also match context.DeadlineExceeded, got %v", err)
	}
}
