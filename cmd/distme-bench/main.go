// Command distme-bench regenerates every table and figure of the paper's
// evaluation (§6 and Appendix B).
//
// Usage:
//
//	distme-bench -exp table4          # one experiment
//	distme-bench -exp fig6a,fig6d     # several
//	distme-bench -exp all             # everything
//	distme-bench -list                # list experiment IDs
//	distme-bench -kernels             # seed-vs-current kernel benchmarks
//	distme-bench -kernels -kernels-out BENCH_kernels.json
//	distme-bench -wire                # gob-vs-codec wire benchmarks
//	distme-bench -wire -wire-out BENCH_wire.json
//	distme-bench -pipeline            # resident-handle vs materialized pipelines
//	distme-bench -pipeline -pipeline-out BENCH_pipeline.json
//	distme-bench -soak                # self-healing soak/chaos run (smoke profile)
//	distme-bench -soak -soak-profile full -soak-out BENCH_soak.json
//	distme-bench -serve               # multi-tenant serving-plane load test (smoke profile)
//	distme-bench -serve -serve-profile full -serve-out BENCH_serve.json
//	distme-bench -kernels -trace-out trace.json   # bench timeline for chrome://tracing
//
// Paper-scale rows are produced by the cost-model plane at the testbed
// constants; "-measured" experiments run the real engine at laptop scale.
// EXPERIMENTS.md records each output against the paper's numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"distme/internal/experiments"
	"distme/internal/kernbench"
	"distme/internal/obs"
	"distme/internal/pipebench"
	"distme/internal/servebench"
	"distme/internal/soak"
	"distme/internal/wirebench"
)

// benchTracer returns a tracer when -trace-out is set, else nil (no-op).
func benchTracer(traceOut string) *obs.Tracer {
	if traceOut == "" {
		return nil
	}
	return obs.NewTracer()
}

// writeBenchTrace writes the recorded bench timeline as Chrome trace_event
// JSON; a nil tracer (no -trace-out) writes nothing.
func writeBenchTrace(tr *obs.Tracer, path string) {
	if tr == nil {
		return
	}
	snap := tr.Snapshot()
	if err := snap.WriteFile(path); err != nil {
		fmt.Fprintf(os.Stderr, "distme-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d bench spans to %s\n", len(snap.Spans), path)
}

func main() {
	exp := flag.String("exp", "all", "experiment ID(s), comma-separated, or 'all'")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	kernels := flag.Bool("kernels", false, "run seed-vs-current kernel benchmarks instead of experiments")
	kernelsOut := flag.String("kernels-out", "", "with -kernels, also write the report as JSON to this path")
	wire := flag.Bool("wire", false, "run gob-vs-codec wire benchmarks (fails on any decode mismatch)")
	wireOut := flag.String("wire-out", "", "with -wire, also write the report as JSON to this path")
	pipeline := flag.Bool("pipeline", false, "run resident-handle vs driver-materialized pipeline benchmarks (fails below the ratio bar or on result mismatch)")
	pipelineOut := flag.String("pipeline-out", "", "with -pipeline, also write the report as JSON to this path")
	soakRun := flag.Bool("soak", false, "run the self-healing soak: seeded chaos workload under the autoscaler, bit-identical results enforced")
	soakProfile := flag.String("soak-profile", "smoke", "with -soak, the profile: smoke (CI, under 90s) or full (nightly)")
	soakOut := flag.String("soak-out", "", "with -soak, also write the report as JSON to this path")
	serveRun := flag.Bool("serve", false, "run the serving-plane load test: open-loop mixed-shape jobs against the multi-tenant server, SLO and fairness gates enforced")
	serveProfile := flag.String("serve-profile", "smoke", "with -serve, the profile: smoke (CI, under 30s) or full (nightly)")
	serveOut := flag.String("serve-out", "", "with -serve, also write the report as JSON to this path")
	traceOut := flag.String("trace-out", "", "with -kernels, -wire, -soak, or -serve, write a Chrome trace_event timeline of the bench run to this path")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	if *wire {
		tr := benchTracer(*traceOut)
		report, err := wirebench.RunTraced(tr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "distme-bench: wire: %v\n", err)
			os.Exit(1)
		}
		report.Fprint(os.Stdout)
		if *wireOut != "" {
			if err := report.WriteJSON(*wireOut); err != nil {
				fmt.Fprintf(os.Stderr, "distme-bench: %v\n", err)
				os.Exit(1)
			}
		}
		writeBenchTrace(tr, *traceOut)
		return
	}

	if *pipeline {
		report, err := pipebench.Run()
		if report != nil {
			report.Fprint(os.Stdout)
			if *pipelineOut != "" {
				if werr := report.WriteJSON(*pipelineOut); werr != nil {
					fmt.Fprintf(os.Stderr, "distme-bench: %v\n", werr)
					os.Exit(1)
				}
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "distme-bench: pipeline: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *soakRun {
		var profile soak.Profile
		switch *soakProfile {
		case "smoke":
			profile = soak.Smoke()
		case "full":
			profile = soak.Full()
		default:
			fmt.Fprintf(os.Stderr, "distme-bench: unknown soak profile %q (want smoke or full)\n", *soakProfile)
			os.Exit(2)
		}
		tr := benchTracer(*traceOut)
		report, err := soak.Run(profile, tr)
		if report != nil {
			report.Fprint(os.Stdout)
			if *soakOut != "" {
				if werr := report.WriteJSON(*soakOut); werr != nil {
					fmt.Fprintf(os.Stderr, "distme-bench: %v\n", werr)
					os.Exit(1)
				}
			}
		}
		writeBenchTrace(tr, *traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "distme-bench: soak: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *serveRun {
		var profile servebench.Profile
		switch *serveProfile {
		case "smoke":
			profile = servebench.Smoke()
		case "full":
			profile = servebench.Full()
		default:
			fmt.Fprintf(os.Stderr, "distme-bench: unknown serve profile %q (want smoke or full)\n", *serveProfile)
			os.Exit(2)
		}
		tr := benchTracer(*traceOut)
		report, err := servebench.Run(profile, tr)
		if report != nil {
			report.Fprint(os.Stdout)
			if *serveOut != "" {
				if werr := report.WriteJSON(*serveOut); werr != nil {
					fmt.Fprintf(os.Stderr, "distme-bench: %v\n", werr)
					os.Exit(1)
				}
			}
		}
		writeBenchTrace(tr, *traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "distme-bench: serve: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *kernels {
		tr := benchTracer(*traceOut)
		report, err := kernbench.RunTraced(tr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "distme-bench: kernels: %v\n", err)
			os.Exit(1)
		}
		report.Fprint(os.Stdout)
		if *kernelsOut != "" {
			if err := report.WriteJSON(*kernelsOut); err != nil {
				fmt.Fprintf(os.Stderr, "distme-bench: %v\n", err)
				os.Exit(1)
			}
		}
		writeBenchTrace(tr, *traceOut)
		return
	}

	var ids []string
	if *exp == "all" {
		ids = experiments.IDs()
	} else {
		ids = strings.Split(*exp, ",")
	}
	exit := 0
	for _, id := range ids {
		id = strings.TrimSpace(id)
		tables, err := experiments.Run(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "distme-bench: %s: %v\n", id, err)
			exit = 1
			continue
		}
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
	}
	os.Exit(exit)
}
