// Command distme-bench regenerates every table and figure of the paper's
// evaluation (§6 and Appendix B).
//
// Usage:
//
//	distme-bench -exp table4          # one experiment
//	distme-bench -exp fig6a,fig6d     # several
//	distme-bench -exp all             # everything
//	distme-bench -list                # list experiment IDs
//	distme-bench -kernels             # seed-vs-current kernel benchmarks
//	distme-bench -kernels -kernels-out BENCH_kernels.json
//	distme-bench -wire                # gob-vs-codec wire benchmarks
//	distme-bench -wire -wire-out BENCH_wire.json
//
// Paper-scale rows are produced by the cost-model plane at the testbed
// constants; "-measured" experiments run the real engine at laptop scale.
// EXPERIMENTS.md records each output against the paper's numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"distme/internal/experiments"
	"distme/internal/kernbench"
	"distme/internal/wirebench"
)

func main() {
	exp := flag.String("exp", "all", "experiment ID(s), comma-separated, or 'all'")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	kernels := flag.Bool("kernels", false, "run seed-vs-current kernel benchmarks instead of experiments")
	kernelsOut := flag.String("kernels-out", "", "with -kernels, also write the report as JSON to this path")
	wire := flag.Bool("wire", false, "run gob-vs-codec wire benchmarks (fails on any decode mismatch)")
	wireOut := flag.String("wire-out", "", "with -wire, also write the report as JSON to this path")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	if *wire {
		report, err := wirebench.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "distme-bench: wire: %v\n", err)
			os.Exit(1)
		}
		report.Fprint(os.Stdout)
		if *wireOut != "" {
			if err := report.WriteJSON(*wireOut); err != nil {
				fmt.Fprintf(os.Stderr, "distme-bench: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}

	if *kernels {
		report, err := kernbench.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "distme-bench: kernels: %v\n", err)
			os.Exit(1)
		}
		report.Fprint(os.Stdout)
		if *kernelsOut != "" {
			if err := report.WriteJSON(*kernelsOut); err != nil {
				fmt.Fprintf(os.Stderr, "distme-bench: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}

	var ids []string
	if *exp == "all" {
		ids = experiments.IDs()
	} else {
		ids = strings.Split(*exp, ",")
	}
	exit := 0
	for _, id := range ids {
		id = strings.TrimSpace(id)
		tables, err := experiments.Run(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "distme-bench: %s: %v\n", id, err)
			exit = 1
			continue
		}
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
	}
	os.Exit(exit)
}
