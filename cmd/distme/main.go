// Command distme is the engine's command-line interface.
//
// Subcommands:
//
//	multiply  run one distributed multiplication and print the report
//	optimize  print the optimal (P*,Q*,R*) for a multiplication shape
//	gnmf      factorize a synthetic rating matrix with GNMF
//	gen       generate a random block matrix file
//	info      describe a block matrix file
//
// Run `distme <subcommand> -h` for flags.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"time"

	"distme"
	"distme/internal/distnet"
	"distme/internal/metrics"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "multiply":
		err = cmdMultiply(os.Args[2:])
	case "optimize":
		err = cmdOptimize(os.Args[2:])
	case "gnmf":
		err = cmdGNMF(os.Args[2:])
	case "gen":
		err = cmdGen(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "rmul":
		err = cmdRemoteMultiply(os.Args[2:])
	case "pagerank":
		err = cmdPageRank(os.Args[2:])
	case "als":
		err = cmdALS(os.Args[2:])
	case "svd":
		err = cmdSVD(os.Args[2:])
	case "explain":
		err = cmdExplain(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "distme: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "distme: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: distme <subcommand> [flags]

subcommands:
  multiply   run one distributed multiplication and print the report
  optimize   print the optimal (P*,Q*,R*) for a multiplication shape
  gnmf       factorize a synthetic rating matrix with GNMF
  gen        generate a random block matrix file
  info       describe a block matrix file
  rmul       multiply on remote distme-worker processes over TCP
  pagerank   run PageRank over a synthetic graph
  als        alternating-least-squares factorization
  svd        randomized truncated SVD
  explain    show the plan for a multiplication without running it`)
}

// laptopConfig builds the single-machine cluster used by the CLI.
func laptopConfig(taskMemMB int64) distme.ClusterConfig {
	cfg := distme.LaptopCluster()
	cfg.LocalWorkers = runtime.GOMAXPROCS(0)
	if taskMemMB > 0 {
		cfg.TaskMemBytes = taskMemMB << 20
	}
	cfg.DiskCapacityBytes = 0
	return cfg
}

func cmdMultiply(args []string) error {
	fs := flag.NewFlagSet("multiply", flag.ExitOnError)
	m := fs.Int("m", 512, "rows of A")
	k := fs.Int("k", 512, "columns of A / rows of B")
	n := fs.Int("n", 512, "columns of B")
	bs := fs.Int("block", 64, "block size")
	sparsity := fs.Float64("sparsity", 1.0, "density of inputs (1 = dense)")
	method := fs.String("method", "auto", "auto|bmm|cpmm|rmm")
	useGPU := fs.Bool("gpu", false, "use the simulated GPU for local multiplication")
	taskMemMB := fs.Int64("taskmem", 0, "per-task memory budget θt in MiB (0 = default)")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	eng, err := distme.NewEngine(distme.EngineConfig{
		Cluster: laptopConfig(*taskMemMB),
		UseGPU:  *useGPU,
	})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	var a, b *distme.Matrix
	if *sparsity >= 1 {
		a = distme.RandomDense(rng, *m, *k, *bs)
		b = distme.RandomDense(rng, *k, *n, *bs)
	} else {
		a = distme.RandomSparse(rng, *m, *k, *bs, *sparsity)
		b = distme.RandomSparse(rng, *k, *n, *bs, *sparsity)
	}

	opts := distme.MulOptions{}
	switch strings.ToLower(*method) {
	case "auto":
		opts.Method = distme.MethodAuto
	case "bmm":
		opts.Method = distme.MethodBMM
	case "cpmm":
		opts.Method = distme.MethodCPMM
	case "rmm":
		opts.Method = distme.MethodRMM
	default:
		return fmt.Errorf("unknown method %q", *method)
	}

	start := time.Now()
	c, report, err := eng.MultiplyOpt(a, b, opts)
	if err != nil {
		return err
	}
	fmt.Printf("C = A x B: %dx%d, %d blocks, nnz=%d\n", c.Rows, c.Cols, c.NumBlocks(), c.NNZ())
	fmt.Printf("method:       %v  params=%v\n", report.Method, report.Params)
	fmt.Printf("elapsed:      %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("repartition:  %s\n", metrics.FormatBytes(report.Comm.RepartitionBytes))
	fmt.Printf("aggregation:  %s\n", metrics.FormatBytes(report.Comm.AggregationBytes))
	if *useGPU {
		fmt.Printf("pci-e:        %s (utilization %.1f%%)\n",
			metrics.FormatBytes(report.GPU.PCIEBytes()), 100*report.GPU.Utilization())
	}
	return nil
}

func cmdOptimize(args []string) error {
	fs := flag.NewFlagSet("optimize", flag.ExitOnError)
	m := fs.Int64("m", 100_000, "rows of A (elements)")
	k := fs.Int64("k", 100_000, "columns of A / rows of B (elements)")
	n := fs.Int64("n", 100_000, "columns of B (elements)")
	bs := fs.Int64("block", 1000, "block size")
	memGB := fs.Float64("taskmem", 6, "per-task memory budget θt in GB")
	nodes := fs.Int("nodes", 9, "cluster nodes M")
	tpn := fs.Int("tasks", 10, "concurrent tasks per node Tc")
	sparsity := fs.Float64("sparsity", 1.0, "density of inputs")
	if err := fs.Parse(args); err != nil {
		return err
	}

	i := int((*m + *bs - 1) / *bs)
	j := int((*n + *bs - 1) / *bs)
	kk := int((*k + *bs - 1) / *bs)
	bytesOf := func(r, c int64) int64 {
		if *sparsity > 0 && *sparsity < 0.5 {
			return int64(float64(r*c)**sparsity) * 16
		}
		return r * c * 8
	}
	s := distme.Shape{
		I: i, J: j, K: kk,
		ABytes: bytesOf(*m, *k),
		BBytes: bytesOf(*k, *n),
		CBytes: *m * *n * 8,
	}
	slots := *nodes * *tpn
	p, err := distme.Optimize(s, int64(*memGB*1e9), slots)
	if err != nil {
		return err
	}
	fmt.Printf("shape:        %dx%dx%d blocks (block=%d)\n", s.I, s.K, s.J, *bs)
	fmt.Printf("(P*,Q*,R*):   %v  (%d tasks over %d slots)\n", p, p.Tasks(), slots)
	fmt.Printf("Eq.(4) cost:  %s\n", metrics.FormatBytes(int64(s.CostBytes(p))))
	fmt.Printf("Eq.(3) mem:   %s per task (budget %s)\n",
		metrics.FormatBytes(int64(s.MemBytes(p))), metrics.FormatBytes(int64(*memGB*1e9)))
	return nil
}

func cmdGNMF(args []string) error {
	fs := flag.NewFlagSet("gnmf", flag.ExitOnError)
	dataset := fs.String("dataset", "netflix", "movielens|netflix|yahoomusic")
	ratings := fs.String("ratings", "", "load real ratings from a 'user item rating' file instead of generating")
	scale := fs.Float64("scale", 0.002, "dataset scale factor")
	rank := fs.Int("rank", 8, "factor dimension")
	iters := fs.Int("iters", 5, "iterations")
	useGPU := fs.Bool("gpu", false, "use the simulated GPU")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var v *distme.Matrix
	var name string
	if *ratings != "" {
		f, err := os.Open(*ratings)
		if err != nil {
			return err
		}
		defer f.Close()
		v, err = distme.LoadRatings(f, 64)
		if err != nil {
			return err
		}
		name = *ratings
	} else {
		d, err := datasetByName(*dataset)
		if err != nil {
			return err
		}
		scaled := d.Scaled(*scale)
		rng := rand.New(rand.NewSource(*seed))
		blockSize := int(scaled.Items / 8)
		if blockSize < 4 {
			blockSize = 4
		}
		v = scaled.RatingMatrix(rng, blockSize)
		name = scaled.Name
	}
	fmt.Printf("V: %s → %d users x %d items, %d ratings (density %.5f)\n",
		name, v.Rows, v.Cols, v.NNZ(), v.Sparsity())

	eng, err := distme.NewEngine(distme.EngineConfig{
		Cluster:      laptopConfig(0),
		UseGPU:       *useGPU,
		TrackLayouts: true,
	})
	if err != nil {
		return err
	}
	start := time.Now()
	res, err := distme.GNMF(eng, v, distme.GNMFOptions{
		Rank: *rank, Iterations: *iters, Seed: *seed, TrackObjective: true,
	})
	if err != nil {
		return err
	}
	fmt.Printf("GNMF rank=%d, %d iterations in %v\n", *rank, *iters, time.Since(start).Round(time.Millisecond))
	for i, obj := range res.Objectives {
		fmt.Printf("  iteration %2d: ||V - W·H||F = %.4f\n", i+1, obj)
	}
	fmt.Printf("communication: %s\n", metrics.FormatBytes(eng.Recorder().CommunicationBytes()))
	return nil
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	rows := fs.Int("rows", 1024, "rows")
	cols := fs.Int("cols", 1024, "columns")
	bs := fs.Int("block", 64, "block size")
	sparsity := fs.Float64("sparsity", 1.0, "density (1 = dense)")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("o", "matrix.dmeb", "output file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	var m *distme.Matrix
	if *sparsity >= 1 {
		m = distme.RandomDense(rng, *rows, *cols, *bs)
	} else {
		m = distme.RandomSparse(rng, *rows, *cols, *bs, *sparsity)
	}
	if err := distme.SaveMatrixFile(*out, m); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %v\n", *out, m)
	return nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: distme info <file>")
	}
	m, err := distme.LoadMatrixFile(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d x %d, block=%d, grid %dx%d\n", fs.Arg(0), m.Rows, m.Cols, m.BlockSize, m.IB, m.JB)
	fmt.Printf("blocks stored: %d, nnz: %d (density %.5f)\n", m.NumBlocks(), m.NNZ(), m.Sparsity())
	fmt.Printf("stored bytes:  %s (dense would be %s)\n",
		metrics.FormatBytes(m.StoredBytes()), metrics.FormatBytes(m.DenseBytes()))
	return nil
}

func cmdRemoteMultiply(args []string) error {
	fs := flag.NewFlagSet("rmul", flag.ExitOnError)
	workers := fs.String("workers", "", "comma-separated worker addresses (distme-worker processes)")
	m := fs.Int("m", 512, "rows of A")
	k := fs.Int("k", 512, "columns of A / rows of B")
	n := fs.Int("n", 512, "columns of B")
	bs := fs.Int("block", 64, "block size")
	aFile := fs.String("a", "", "load A from a .dmeb file instead of generating")
	bFile := fs.String("b", "", "load B from a .dmeb file instead of generating")
	memGB := fs.Float64("workermem", 1, "per-worker memory budget in GB for the optimizer")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers == "" {
		return fmt.Errorf("rmul: -workers required (start distme-worker processes first)")
	}
	d, err := distnet.Dial(strings.Split(*workers, ","))
	if err != nil {
		return err
	}
	defer d.Close()

	rng := rand.New(rand.NewSource(*seed))
	var a, b *distme.Matrix
	if *aFile != "" {
		if a, err = distme.LoadMatrixFile(*aFile); err != nil {
			return err
		}
	} else {
		a = distme.RandomDense(rng, *m, *k, *bs)
	}
	if *bFile != "" {
		if b, err = distme.LoadMatrixFile(*bFile); err != nil {
			return err
		}
	} else {
		b = distme.RandomDense(rng, *k, *n, *bs)
	}
	start := time.Now()
	c, params, err := d.MultiplyAuto(a, b, int64(*memGB*1e9))
	if err != nil {
		return err
	}
	sent, recv := d.WireBytes()
	fmt.Printf("C = A x B on %d workers: %dx%d, params %v\n", d.Workers(), c.Rows, c.Cols, params)
	fmt.Printf("elapsed: %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("wire traffic: sent %s, received %s (real socket bytes)\n",
		metrics.FormatBytes(sent), metrics.FormatBytes(recv))
	return nil
}

func cmdPageRank(args []string) error {
	fs := flag.NewFlagSet("pagerank", flag.ExitOnError)
	n := fs.Int("n", 512, "graph size (nodes)")
	density := fs.Float64("density", 0.01, "edge density")
	iters := fs.Int("iters", 100, "max iterations")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	eng, err := distme.NewEngine(distme.EngineConfig{Cluster: laptopConfig(0)})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	adj := distme.RandomSparse(rng, *n, *n, 64, *density)
	res, err := distme.PageRank(eng, adj, distme.PageRankOptions{MaxIterations: *iters})
	if err != nil {
		return err
	}
	fmt.Printf("PageRank over %d nodes: converged in %d iterations (delta %.2e)\n",
		*n, res.Iterations, res.Delta)
	best, bestRank := 0, 0.0
	for i := 0; i < *n; i++ {
		if r := res.Ranks.At(i, 0); r > bestRank {
			best, bestRank = i, r
		}
	}
	fmt.Printf("top node: %d with rank %.6f\n", best, bestRank)
	return nil
}

func cmdALS(args []string) error {
	fs := flag.NewFlagSet("als", flag.ExitOnError)
	dataset := fs.String("dataset", "netflix", "movielens|netflix|yahoomusic")
	scale := fs.Float64("scale", 0.002, "dataset scale factor")
	rank := fs.Int("rank", 8, "factor dimension")
	iters := fs.Int("iters", 5, "iterations")
	lambda := fs.Float64("lambda", 0.1, "ridge regularizer")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := datasetByName(*dataset)
	if err != nil {
		return err
	}
	scaled := d.Scaled(*scale)
	rng := rand.New(rand.NewSource(*seed))
	blockSize := int(scaled.Items / 8)
	if blockSize < 4 {
		blockSize = 4
	}
	v := scaled.RatingMatrix(rng, blockSize)
	eng, err := distme.NewEngine(distme.EngineConfig{Cluster: laptopConfig(0), TrackLayouts: true})
	if err != nil {
		return err
	}
	start := time.Now()
	res, err := distme.ALS(eng, v, distme.ALSOptions{
		Rank: *rank, Iterations: *iters, Lambda: *lambda, Seed: *seed, TrackObjective: true,
	})
	if err != nil {
		return err
	}
	fmt.Printf("ALS on %s (%dx%d): rank=%d λ=%g, %d iterations in %v\n",
		scaled.Name, v.Rows, v.Cols, *rank, *lambda, *iters, time.Since(start).Round(time.Millisecond))
	for i, obj := range res.Objectives {
		fmt.Printf("  iteration %2d: objective = %.4f\n", i+1, obj)
	}
	return nil
}

func cmdSVD(args []string) error {
	fs := flag.NewFlagSet("svd", flag.ExitOnError)
	m := fs.Int("m", 512, "rows")
	n := fs.Int("n", 384, "columns")
	bs := fs.Int("block", 64, "block size")
	rank := fs.Int("rank", 8, "singular triplets to compute")
	power := fs.Int("power", 2, "power iterations")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	eng, err := distme.NewEngine(distme.EngineConfig{Cluster: laptopConfig(0)})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	a := distme.RandomDense(rng, *m, *n, *bs)
	start := time.Now()
	res, err := distme.SVD(eng, a, distme.SVDOptions{
		Rank: *rank, Oversample: 8, PowerIterations: *power, Seed: *seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("randomized SVD of %dx%d, rank %d in %v\n", *m, *n, *rank, time.Since(start).Round(time.Millisecond))
	fmt.Printf("singular values: ")
	for _, s := range res.S {
		fmt.Printf("%.3f ", s)
	}
	fmt.Println()
	return nil
}

func datasetByName(name string) (distme.Dataset, error) {
	switch strings.ToLower(name) {
	case "movielens":
		return distme.MovieLens, nil
	case "netflix":
		return distme.Netflix, nil
	case "yahoomusic":
		return distme.YahooMusic, nil
	default:
		return distme.Dataset{}, fmt.Errorf("unknown dataset %q", name)
	}
}

func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	m := fs.Int("m", 512, "rows of A")
	k := fs.Int("k", 512, "columns of A / rows of B")
	n := fs.Int("n", 512, "columns of B")
	bs := fs.Int("block", 64, "block size")
	sparsity := fs.Float64("sparsity", 1.0, "density of inputs (1 = dense)")
	method := fs.String("method", "auto", "auto|bmm|cpmm|rmm")
	useGPU := fs.Bool("gpu", false, "include the GPU subcuboid plan")
	taskMemMB := fs.Int64("taskmem", 0, "per-task memory budget θt in MiB (0 = default)")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	eng, err := distme.NewEngine(distme.EngineConfig{
		Cluster: laptopConfig(*taskMemMB),
		UseGPU:  *useGPU,
	})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	var a, b *distme.Matrix
	if *sparsity >= 1 {
		a = distme.RandomDense(rng, *m, *k, *bs)
		b = distme.RandomDense(rng, *k, *n, *bs)
	} else {
		a = distme.RandomSparse(rng, *m, *k, *bs, *sparsity)
		b = distme.RandomSparse(rng, *k, *n, *bs, *sparsity)
	}
	var mth distme.Method
	switch strings.ToLower(*method) {
	case "auto":
		mth = distme.MethodAuto
	case "bmm":
		mth = distme.MethodBMM
	case "cpmm":
		mth = distme.MethodCPMM
	case "rmm":
		mth = distme.MethodRMM
	default:
		return fmt.Errorf("unknown method %q", *method)
	}
	ex, err := eng.Explain(a, b, distme.MulOptions{Method: mth})
	if err != nil {
		return err
	}
	fmt.Printf("plan for %dx%dx%d (block %d, sparsity %g):\n%v", *m, *k, *n, *bs, *sparsity, ex)
	return nil
}
