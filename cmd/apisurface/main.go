// Command apisurface dumps the exported API surface of the public packages
// (the root distme package, internal/engine, and internal/distnet) as one
// sorted line per symbol. The output is checked in at api/surface.txt; CI
// runs `make api-check`, so any change to the exported surface — a renamed
// method, a dropped deprecated wrapper, a new option — shows up as a
// reviewable diff instead of slipping through.
//
//	apisurface -out api/surface.txt   # refresh the checked-in surface
//	apisurface -check                 # exit 1 if the live surface differs
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// surfacePackages are the packages whose exported surface is the project's
// API contract, in the order they appear in the dump.
var surfacePackages = []struct{ name, dir string }{
	{"distme", "."},
	{"distme/internal/engine", "internal/engine"},
	{"distme/internal/distnet", "internal/distnet"},
}

func main() {
	out := flag.String("out", "api/surface.txt", "file the surface is written to (or compared against with -check)")
	check := flag.Bool("check", false, "compare the live surface against -out instead of writing; exit 1 on any difference")
	flag.Parse()

	var buf bytes.Buffer
	for _, p := range surfacePackages {
		lines, err := packageSurface(p.dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "apisurface: %s: %v\n", p.name, err)
			os.Exit(2)
		}
		fmt.Fprintf(&buf, "# %s\n", p.name)
		for _, l := range lines {
			buf.WriteString(l)
			buf.WriteByte('\n')
		}
		buf.WriteByte('\n')
	}

	if *check {
		want, err := os.ReadFile(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "apisurface: reading %s: %v (run `make api-surface` to create it)\n", *out, err)
			os.Exit(1)
		}
		if !bytes.Equal(want, buf.Bytes()) {
			fmt.Fprintf(os.Stderr, "apisurface: exported API surface differs from %s\n", *out)
			printDiff(os.Stderr, string(want), buf.String())
			fmt.Fprintf(os.Stderr, "apisurface: run `make api-surface` and review the diff\n")
			os.Exit(1)
		}
		fmt.Printf("apisurface: surface matches %s\n", *out)
		return
	}
	if dir := filepath.Dir(*out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "apisurface: %v\n", err)
			os.Exit(2)
		}
	}
	if err := os.WriteFile(*out, buf.Bytes(), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "apisurface: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("apisurface: wrote %s\n", *out)
}

// packageSurface parses one package directory (tests excluded) and returns
// a sorted line per exported symbol: funcs with full signatures, methods
// keyed by receiver, types with their kind, exported struct fields and
// interface methods, consts and vars.
func packageSurface(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	var lines []string
	for name, pkg := range pkgs {
		if strings.HasSuffix(name, "_test") || name == "main" {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				lines = append(lines, declSurface(fset, d)...)
			}
		}
	}
	sort.Strings(lines)
	return lines, nil
}

func declSurface(fset *token.FileSet, d ast.Decl) []string {
	switch d := d.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return nil
		}
		if d.Recv == nil {
			return []string{"func " + d.Name.Name + typeParams(fset, d.Type.TypeParams) + signature(fset, d.Type)}
		}
		recv := exprString(fset, d.Recv.List[0].Type)
		if !ast.IsExported(strings.TrimLeft(recv, "*")) {
			return nil
		}
		return []string{"method (" + recv + ") " + d.Name.Name + signature(fset, d.Type)}
	case *ast.GenDecl:
		var lines []string
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				lines = append(lines, typeSurface(fset, s)...)
			case *ast.ValueSpec:
				kind := "const"
				if d.Tok == token.VAR {
					kind = "var"
				}
				for _, n := range s.Names {
					if !n.IsExported() {
						continue
					}
					line := kind + " " + n.Name
					if s.Type != nil {
						line += " " + exprString(fset, s.Type)
					}
					lines = append(lines, line)
				}
			}
		}
		return lines
	}
	return nil
}

// typeSurface renders one type declaration: the type line itself plus one
// line per exported struct field or interface method.
func typeSurface(fset *token.FileSet, s *ast.TypeSpec) []string {
	if !s.Name.IsExported() {
		return nil
	}
	name := s.Name.Name + typeParams(fset, s.TypeParams)
	switch t := s.Type.(type) {
	case *ast.StructType:
		lines := []string{"type " + name + " struct"}
		for _, f := range t.Fields.List {
			if len(f.Names) == 0 { // embedded
				emb := exprString(fset, f.Type)
				if ast.IsExported(baseName(emb)) {
					lines = append(lines, "field "+s.Name.Name+"."+baseName(emb)+" "+emb)
				}
				continue
			}
			for _, n := range f.Names {
				if n.IsExported() {
					lines = append(lines, "field "+s.Name.Name+"."+n.Name+" "+exprString(fset, f.Type))
				}
			}
		}
		return lines
	case *ast.InterfaceType:
		lines := []string{"type " + name + " interface"}
		for _, m := range t.Methods.List {
			if len(m.Names) == 0 {
				lines = append(lines, "embedded "+s.Name.Name+"."+exprString(fset, m.Type))
				continue
			}
			for _, n := range m.Names {
				if n.IsExported() {
					if ft, ok := m.Type.(*ast.FuncType); ok {
						lines = append(lines, "ifacemethod "+s.Name.Name+"."+n.Name+signature(fset, ft))
					}
				}
			}
		}
		return lines
	default:
		kind := exprString(fset, s.Type)
		if s.Assign.IsValid() {
			return []string{"type " + name + " = " + kind}
		}
		return []string{"type " + name + " " + kind}
	}
}

// signature renders a func type's parameter and result lists.
func signature(fset *token.FileSet, t *ast.FuncType) string {
	var b strings.Builder
	b.WriteByte('(')
	writeFieldList(fset, &b, t.Params)
	b.WriteByte(')')
	if t.Results != nil && len(t.Results.List) > 0 {
		b.WriteByte(' ')
		if len(t.Results.List) == 1 && len(t.Results.List[0].Names) == 0 {
			b.WriteString(exprString(fset, t.Results.List[0].Type))
		} else {
			b.WriteByte('(')
			writeFieldList(fset, &b, t.Results)
			b.WriteByte(')')
		}
	}
	return b.String()
}

func typeParams(fset *token.FileSet, tp *ast.FieldList) string {
	if tp == nil || len(tp.List) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('[')
	writeFieldList(fset, &b, tp)
	b.WriteByte(']')
	return b.String()
}

// writeFieldList renders parameters as types only — parameter names are not
// part of the API contract, so renaming one doesn't churn the surface.
func writeFieldList(fset *token.FileSet, b *strings.Builder, fl *ast.FieldList) {
	if fl == nil {
		return
	}
	first := true
	for _, f := range fl.List {
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			if !first {
				b.WriteString(", ")
			}
			first = false
			b.WriteString(exprString(fset, f.Type))
		}
	}
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var b bytes.Buffer
	if err := printer.Fprint(&b, fset, e); err != nil {
		return fmt.Sprintf("<%v>", err)
	}
	// Collapse any multi-line rendering (struct literals in types, long
	// func types) to a single line for stable one-line-per-symbol output.
	return strings.Join(strings.Fields(b.String()), " ")
}

func baseName(s string) string {
	s = strings.TrimLeft(s, "*")
	if i := strings.LastIndex(s, "."); i >= 0 {
		s = s[i+1:]
	}
	if i := strings.Index(s, "["); i >= 0 {
		s = s[:i]
	}
	return s
}

// printDiff prints a minimal line diff: lines only in want prefixed with
// "-", lines only in got prefixed with "+".
func printDiff(w *os.File, want, got string) {
	wantSet := map[string]int{}
	for _, l := range strings.Split(want, "\n") {
		wantSet[l]++
	}
	gotSet := map[string]int{}
	for _, l := range strings.Split(got, "\n") {
		gotSet[l]++
	}
	for _, l := range strings.Split(want, "\n") {
		if gotSet[l] == 0 && l != "" {
			fmt.Fprintf(w, "  - %s\n", l)
		}
	}
	for _, l := range strings.Split(got, "\n") {
		if wantSet[l] == 0 && l != "" {
			fmt.Fprintf(w, "  + %s\n", l)
		}
	}
}
