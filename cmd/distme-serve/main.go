// Command distme-serve is the multi-tenant serving plane: a long-running
// server that embeds a distnet driver and accepts many concurrent multiply
// jobs over a net/rpc wire API (submit / status / result / cancel).
//
// Jobs are priced at admission with the Eq.(4) communication optimizer
// under the per-worker memory budget θt: a job whose estimated cuboid wave
// would not fit the cluster is rejected (never deadlocked), a tenant over
// its byte or flop quota gets ErrQuotaExceeded, and a full queue answers
// with a typed retry-after hint. Admitted jobs dispatch by weighted fair
// share across tenants; see docs/SERVING.md for the operator guide.
//
// Point it at running distme-worker processes:
//
//	distme-serve -addr :7090 -workers host1:7070,host2:7070
//
// or let it spin up an in-process pool for a single machine:
//
//	distme-serve -addr :7090 -local 4
//
// Tenants are declared with repeatable -tenant name[:weight[:maxqueued[:quotaMB]]]
// flags; without any, every job lands in one "default" tenant. On SIGTERM
// the server stops accepting, drains in-flight jobs (bounded by -drain),
// and prints per-tenant accounting.
//
//	distme-serve -addr :7090 -local 2 \
//	  -tenant batch:1:256:4096 -tenant online:4:64:1024 \
//	  -debug-addr 127.0.0.1:7091
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"distme/internal/distnet"
	"distme/internal/obs"
	"distme/internal/serve"
)

// tenantFlags collects repeatable -tenant name[:weight[:maxqueued[:quotaMB]]]
// values.
type tenantFlags struct {
	tenants []serve.Tenant
}

func (f *tenantFlags) String() string {
	parts := make([]string, 0, len(f.tenants))
	for _, t := range f.tenants {
		parts = append(parts, t.Name)
	}
	return strings.Join(parts, ",")
}

func (f *tenantFlags) Set(v string) error {
	parts := strings.Split(v, ":")
	if parts[0] == "" {
		return fmt.Errorf("tenant name empty in %q", v)
	}
	t := serve.Tenant{Name: parts[0]}
	if len(parts) > 1 && parts[1] != "" {
		w, err := strconv.Atoi(parts[1])
		if err != nil || w < 1 {
			return fmt.Errorf("tenant %q: weight %q must be a positive integer", t.Name, parts[1])
		}
		t.Weight = w
	}
	if len(parts) > 2 && parts[2] != "" {
		q, err := strconv.Atoi(parts[2])
		if err != nil || q < 1 {
			return fmt.Errorf("tenant %q: maxqueued %q must be a positive integer", t.Name, parts[2])
		}
		t.MaxQueued = q
	}
	if len(parts) > 3 && parts[3] != "" {
		mb, err := strconv.ParseInt(parts[3], 10, 64)
		if err != nil || mb < 1 {
			return fmt.Errorf("tenant %q: quotaMB %q must be a positive integer", t.Name, parts[3])
		}
		t.MaxInflightBytes = mb << 20
	}
	if len(parts) > 4 {
		return fmt.Errorf("tenant %q: too many fields in %q (want name[:weight[:maxqueued[:quotaMB]]])", t.Name, v)
	}
	f.tenants = append(f.tenants, t)
	return nil
}

func main() {
	addr := flag.String("addr", ":7090", "wire API listen address")
	workers := flag.String("workers", "", "comma-separated distme-worker addresses")
	local := flag.Int("local", 0, "start this many in-process workers instead of dialing -workers")
	var tenants tenantFlags
	flag.Var(&tenants, "tenant", "tenant spec name[:weight[:maxqueued[:quotaMB]]]; repeatable (default: one \"default\" tenant)")
	workerMem := flag.Int64("worker-mem", 0, "per-worker memory budget θt in bytes for admission pricing (0 = 1 GiB)")
	capacityFraction := flag.Float64("capacity-fraction", 0, "fraction of cluster memory admission may fill (0 = 0.9)")
	maxQueued := flag.Int("max-queued", 0, "global queued-job bound (0 = 1024)")
	maxConcurrent := flag.Int("max-concurrent", 0, "dispatch parallelism bound (0 = scale with live workers)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout for in-flight jobs")
	debugAddr := flag.String("debug-addr", "", "serve /debug/distme (with a \"serve\" block) and pprof on this address (empty = off)")
	flag.Parse()

	if (*workers == "") == (*local == 0) {
		log.Fatal("distme-serve: exactly one of -workers or -local is required")
	}

	dopts := distnet.Options{DebugAddr: *debugAddr}
	if *debugAddr != "" {
		dopts.Tracer = obs.NewTracer()
	}

	var pool *distnet.InProcPool
	addrs := strings.Split(*workers, ",")
	if *local > 0 {
		pool = &distnet.InProcPool{Opts: distnet.WorkerOptions{Tracer: dopts.Tracer}}
		addrs = addrs[:0]
		for i := 0; i < *local; i++ {
			a, err := pool.Grow(context.Background())
			if err != nil {
				log.Fatalf("distme-serve: start local worker: %v", err)
			}
			addrs = append(addrs, a)
		}
	}
	d, err := distnet.DialOptions(addrs, dopts)
	if err != nil {
		log.Fatalf("distme-serve: %v", err)
	}
	defer d.Close()
	if pool != nil {
		defer pool.Close(context.Background())
	}

	s, err := serve.New(d, serve.Config{
		Tenants:           tenants.tenants,
		WorkerMemBytes:    *workerMem,
		CapacityFraction:  *capacityFraction,
		MaxQueuedJobs:     *maxQueued,
		MaxConcurrentJobs: *maxConcurrent,
		Tracer:            dopts.Tracer,
	})
	if err != nil {
		log.Fatalf("distme-serve: %v", err)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("distme-serve: %v", err)
	}
	sl, err := serve.ServeListener(s, l)
	if err != nil {
		log.Fatalf("distme-serve: %v", err)
	}
	fmt.Printf("distme-serve: serving %d workers on %s (%s)\n", d.Workers(), sl.Addr(), tenantSummary(tenants.tenants))
	if *debugAddr != "" {
		fmt.Printf("distme-serve: debug endpoints on http://%s/debug/distme\n", d.DebugAddr())
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	sig := <-sigs
	log.Printf("distme-serve: %v: draining (timeout %v)", sig, *drain)

	// Stop accepting new connections first, then drain: Close cancels
	// queued jobs and waits for running ones. The drain timer bounds the
	// wait so a wedged job cannot hold shutdown forever.
	sl.Close()
	done := make(chan struct{})
	go func() {
		s.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(*drain):
		log.Printf("distme-serve: drain timeout expired with jobs still running")
		os.Exit(1)
	}
	for _, ts := range s.Tenants() {
		log.Printf("distme-serve: tenant %q: %d admitted, %d completed, %d failed, %d cancelled, %d rejected (%d queue-full, %d quota), %.1f MB moved",
			ts.Tenant, ts.Admitted, ts.Completed, ts.Failed, ts.Cancelled,
			ts.RejectedQueueFull+ts.RejectedQuota+ts.RejectedInfeasible,
			ts.RejectedQueueFull, ts.RejectedQuota,
			float64(ts.MeasuredRequestBytes+ts.MeasuredReplyBytes)/(1<<20))
	}
}

func tenantSummary(ts []serve.Tenant) string {
	if len(ts) == 0 {
		return `tenant "default"`
	}
	names := make([]string, len(ts))
	for i, t := range ts {
		names[i] = t.Name
	}
	return fmt.Sprintf("tenants %s", strings.Join(names, ","))
}
