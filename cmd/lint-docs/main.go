// Command lint-docs compiles every ```go fence in README.md and docs/*.md
// against the current API, so documentation examples cannot rot: a snippet
// that no longer builds fails `make lint-docs` (and CI) with the markdown
// file and fence line in the error.
//
// Two snippet shapes are accepted:
//
//   - full programs (the fence contains a `package` clause) build verbatim;
//   - fragments are wrapped in `package main`, given imports inferred from
//     the package qualifiers they use, placed inside func main(), and every
//     top-level `x := …` binding is blank-assigned afterwards so
//     fragments may declare results they don't consume.
//
// Fences whose info string is anything other than exactly "go" (sh, json,
// text, or "go skip" to opt a pseudo-code block out) are ignored.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// snippet is one ```go fence: where it came from and its body.
type snippet struct {
	file string // markdown path, for error reporting
	line int    // 1-based line of the opening fence
	body string
}

// knownImports maps package qualifiers that may appear in doc fragments to
// their import paths. Qualifiers outside this table are assumed to be
// local variables and ignored.
var knownImports = map[string]string{
	"distme":  "distme",
	"distnet": "distme/internal/distnet",
	"serve":   "distme/internal/serve",
	"obs":     "distme/internal/obs",
	"metrics": "distme/internal/metrics",
	"plan":    "distme/internal/plan",
	"bmat":    "distme/internal/bmat",
	"fmt":     "fmt",
	"log":     "log",
	"os":      "os",
	"rand":    "math/rand",
	"time":    "time",
	"runtime": "runtime",
	"sort":    "sort",
	"strings": "strings",
	"context": "context",
	"errors":  "errors",
	"math":    "math",
}

var (
	fenceOpen  = regexp.MustCompile("^```(.*)$")
	qualifier  = regexp.MustCompile(`(^|[^\w."'/])([a-z]\w*)\.`)
	shortDecl  = regexp.MustCompile(`^([A-Za-z_]\w*(?:\s*,\s*[A-Za-z_]\w*)*)\s*:=`)
	loopOpener = regexp.MustCompile(`^(for|if|switch|select|go|defer|return|case)\b`)
)

func main() {
	root, err := moduleRoot()
	if err != nil {
		fatal(err)
	}
	files := []string{filepath.Join(root, "README.md")}
	docs, err := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	if err != nil {
		fatal(err)
	}
	files = append(files, docs...)
	sort.Strings(files)

	var snippets []snippet
	for _, f := range files {
		s, err := extract(f)
		if err != nil {
			fatal(err)
		}
		snippets = append(snippets, s...)
	}
	if len(snippets) == 0 {
		fatal(fmt.Errorf("lint-docs: no ```go fences found — wrong directory?"))
	}

	tmp, err := os.MkdirTemp(root, ".lintdocs-")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(tmp)

	failures := 0
	for i, sn := range snippets {
		dir := filepath.Join(tmp, fmt.Sprintf("snip%02d", i))
		if err := os.Mkdir(dir, 0o755); err != nil {
			fatal(err)
		}
		src := sn.body
		if !strings.Contains(src, "package ") {
			src = wrapFragment(src)
		}
		if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(src), 0o644); err != nil {
			fatal(err)
		}
		rel, _ := filepath.Rel(root, dir)
		cmd := exec.Command("go", "build", "-o", os.DevNull, "./"+filepath.ToSlash(rel))
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "FAIL %s:%d: snippet does not build:\n%s\n", sn.file, sn.line, indent(string(out)))
			fmt.Fprintf(os.Stderr, "--- generated source ---\n%s\n", indent(src))
		}
	}
	if failures > 0 {
		os.RemoveAll(tmp) // os.Exit skips the defer
		fmt.Fprintf(os.Stderr, "lint-docs: %d of %d snippets failed\n", failures, len(snippets))
		os.Exit(1)
	}
	fmt.Printf("lint-docs: %d snippets across %d files build cleanly\n", len(snippets), len(files))
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint-docs: no go.mod above working directory")
		}
		dir = parent
	}
}

// extract pulls the ```go fences out of one markdown file.
func extract(path string) ([]snippet, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []snippet
	var cur *snippet
	inGo, inOther := false, false
	for i, line := range strings.Split(string(data), "\n") {
		m := fenceOpen.FindStringSubmatch(strings.TrimRight(line, " \t"))
		if m == nil {
			if inGo {
				cur.body += line + "\n"
			}
			continue
		}
		info := strings.TrimSpace(m[1])
		switch {
		case inGo: // closing fence of a go block
			out = append(out, *cur)
			cur, inGo = nil, false
		case inOther: // closing fence of a non-go block
			inOther = false
		case info == "go":
			cur = &snippet{file: path, line: i + 1}
			inGo = true
		default: // opening fence of sh/json/text/"go skip"/bare
			inOther = true
		}
	}
	if inGo {
		return nil, fmt.Errorf("%s:%d: unterminated ```go fence", path, cur.line)
	}
	return out, nil
}

// wrapFragment turns a statement-level fragment into a compilable program.
func wrapFragment(body string) string {
	imports := map[string]bool{}
	var uses []string
	for _, line := range strings.Split(body, "\n") {
		for _, m := range qualifier.FindAllStringSubmatch(line, -1) {
			if path, ok := knownImports[m[2]]; ok {
				imports[path] = true
			}
		}
		// Top-level `a, b := …` declarations may go unused in a doc
		// fragment; blank-assign them after the fragment runs.
		if loopOpener.MatchString(line) {
			continue
		}
		if m := shortDecl.FindStringSubmatch(line); m != nil {
			for _, id := range strings.Split(m[1], ",") {
				if id = strings.TrimSpace(id); id != "_" {
					uses = append(uses, id)
				}
			}
		}
	}
	paths := make([]string, 0, len(imports))
	for p := range imports {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	var b strings.Builder
	b.WriteString("package main\n\n")
	if len(paths) > 0 {
		b.WriteString("import (\n")
		for _, p := range paths {
			fmt.Fprintf(&b, "\t%q\n", p)
		}
		b.WriteString(")\n\n")
	}
	b.WriteString("func main() {\n")
	b.WriteString(body)
	for _, id := range uses {
		fmt.Fprintf(&b, "\t_ = %s\n", id)
	}
	b.WriteString("}\n")
	return b.String()
}

func indent(s string) string {
	return "\t" + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n\t")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
