// Command distme-worker serves cuboid multiplications over TCP: the remote
// executor of the distnet execution path. Start several (one per machine or
// port) and point `distme rmul -workers ...` or distnet.Dial at them.
//
//	distme-worker -addr :7070
package main

import (
	"flag"
	"fmt"
	"log"
	"net"

	"distme/internal/distnet"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	flag.Parse()

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("distme-worker: %v", err)
	}
	if _, err := distnet.Serve(l); err != nil {
		log.Fatalf("distme-worker: %v", err)
	}
	fmt.Printf("distme-worker: serving cuboid multiplications on %s\n", l.Addr())
	select {}
}
