// Command distme-worker serves cuboid multiplications over TCP: the remote
// executor of the distnet execution path. Start several (one per machine or
// port) and point `distme rmul -workers ...` or distnet.Dial at them.
//
// On SIGTERM or SIGINT the worker drains gracefully: it stops accepting
// connections, finishes in-flight cuboids (bounded by -drain), then closes,
// so a scaled-down executor never drops work it already accepted.
//
// With -debug-addr the worker serves live introspection endpoints — a
// /debug/distme JSON snapshot (served cuboids, in-flight RPCs, cache
// occupancy, recent spans) and net/http/pprof — and records a span per
// served cuboid; see docs/OBSERVABILITY.md.
//
//	distme-worker -addr :7070 -drain 10s -debug-addr 127.0.0.1:7071
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"distme/internal/distnet"
	"distme/internal/obs"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout for in-flight RPCs")
	cacheBytes := flag.Int64("cache-bytes", 0, "content-addressed block cache capacity in bytes (0 = default 256 MiB, negative = disabled)")
	debugAddr := flag.String("debug-addr", "", "serve /debug/distme and pprof on this address (empty = off, port 0 = pick free port)")
	flag.Parse()

	wopts := distnet.WorkerOptions{CacheBytes: *cacheBytes}
	if *debugAddr != "" {
		wopts.Tracer = obs.NewTracer()
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("distme-worker: %v", err)
	}
	w, err := distnet.ServeOptions(l, wopts)
	if err != nil {
		log.Fatalf("distme-worker: %v", err)
	}
	fmt.Printf("distme-worker: serving cuboid multiplications on %s\n", l.Addr())
	if *debugAddr != "" {
		dbg, err := w.ServeDebug(*debugAddr)
		if err != nil {
			log.Fatalf("distme-worker: debug listener: %v", err)
		}
		defer dbg.Close()
		fmt.Printf("distme-worker: debug endpoints on http://%s/debug/distme\n", dbg.Addr())
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	sig := <-sigs
	log.Printf("distme-worker: %v: draining (timeout %v)", sig, *drain)
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := w.Shutdown(ctx); err != nil {
		log.Printf("distme-worker: drain timeout expired: %v (served %d cuboids)", err, w.Multiplies())
		os.Exit(1)
	}
	cs := w.CacheStats()
	log.Printf("distme-worker: drained cleanly (served %d cuboids; block cache %d hits / %d misses / %d evictions)",
		w.Multiplies(), cs.Hits, cs.Misses, cs.Evictions)
}
