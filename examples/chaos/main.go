// Chaos: multiply under deterministic fault injection — seeded task
// crashes, injected O.O.M., stragglers with speculative rescue, and
// shuffle-fetch failures recovered by lineage recomputation — and verify
// the result is byte-identical to the failure-free run. Also demonstrates
// the typed-error API and context cancellation mid-retry.
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"time"

	"distme"
)

func main() {
	cfg := distme.LaptopCluster()
	cfg.LocalWorkers = runtime.GOMAXPROCS(0)
	cfg.TaskMemBytes = 1 << 30

	rng := rand.New(rand.NewSource(1))
	a := distme.RandomDense(rng, 1024, 768, 64)
	b := distme.RandomDense(rng, 768, 1024, 64)

	// Failure-free baseline fingerprint.
	eng, err := distme.NewEngine(distme.EngineConfig{Cluster: cfg})
	if err != nil {
		log.Fatal(err)
	}
	base, _, err := eng.MultiplyOpt(a, b, distme.MulOptions{})
	if err != nil {
		log.Fatal(err)
	}
	eng.Close()
	var want bytes.Buffer
	if err := distme.SaveMatrix(&want, base); err != nil {
		log.Fatal(err)
	}

	// The same multiply under 20% mixed faults, with retries, speculation
	// and lineage recovery switched on.
	chaosCfg := cfg
	chaosCfg.TaskRetries = 4
	chaosCfg.RetryBackoff = time.Millisecond
	chaosCfg.Speculation = true
	chaosCfg.Faults = distme.Faults{
		Seed:           7,
		CrashRate:      0.2,
		OOMRate:        0.1,
		StragglerRate:  0.2,
		StragglerDelay: 10 * time.Millisecond,
		FetchFailRate:  0.2,
	}
	chaosEng, err := distme.NewEngine(distme.EngineConfig{Cluster: chaosCfg})
	if err != nil {
		log.Fatal(err)
	}
	defer chaosEng.Close()

	c, report, err := chaosEng.MultiplyOpt(a, b, distme.MulOptions{})
	if err != nil {
		log.Fatal(err)
	}
	var got bytes.Buffer
	if err := distme.SaveMatrix(&got, c); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("chaos multiply: %s %v in %v\n", report.Method, report.Params, report.Elapsed.Round(time.Millisecond))
	fmt.Printf("  faults injected:     %d\n", report.Elastic.FaultsInjected)
	fmt.Printf("  task retries:        %d\n", report.Elastic.TaskRetries)
	fmt.Printf("  speculative copies:  %d launched, %d won\n",
		report.Elastic.SpeculativeLaunched, report.Elastic.SpeculativeWins)
	fmt.Printf("  fetch retries:       %d\n", report.Elastic.FetchRetries)
	fmt.Printf("  recomputed partials: %d\n", report.Elastic.RecomputedPartials)
	if bytes.Equal(got.Bytes(), want.Bytes()) {
		fmt.Println("  result: byte-identical to the failure-free run")
	} else {
		log.Fatal("  result: DIVERGED — this is a bug")
	}

	// Typed errors: crash every attempt and watch the retry budget exhaust.
	doomedCfg := cfg
	doomedCfg.TaskRetries = 2
	doomedCfg.RetryBackoff = time.Millisecond
	doomedCfg.Faults = distme.Faults{Seed: 1, CrashRate: 1, MaxFaultsPerTask: 100}
	doomed, err := distme.NewEngine(distme.EngineConfig{Cluster: doomedCfg})
	if err != nil {
		log.Fatal(err)
	}
	defer doomed.Close()
	_, _, err = doomed.MultiplyOpt(a, b, distme.MulOptions{})
	switch {
	case errors.Is(err, distme.ErrRetriesExhausted):
		fmt.Printf("persistent crashes: retries exhausted as expected (%v)\n",
			errors.Is(err, distme.ErrRetriesExhausted))
	case err == nil:
		log.Fatal("crash-everything run unexpectedly succeeded")
	default:
		log.Fatalf("unexpected error class: %v", err)
	}

	// Context cancellation mid-retry: the engine aborts within one backoff
	// step and the error wraps both ErrCancelled and ctx.Err().
	cancelCfg := doomedCfg
	cancelCfg.TaskRetries = 100
	cancelCfg.RetryBackoff = 50 * time.Millisecond
	cancelEng, err := distme.NewEngine(distme.EngineConfig{Cluster: cancelCfg})
	if err != nil {
		log.Fatal(err)
	}
	defer cancelEng.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err = cancelEng.MultiplyCtx(ctx, a, b, distme.MulOptions{})
	if errors.Is(err, distme.ErrCancelled) && errors.Is(err, context.DeadlineExceeded) {
		fmt.Printf("cancelled mid-retry after %v (typed ErrCancelled wrapping ctx.Err())\n",
			time.Since(start).Round(time.Millisecond))
	} else {
		log.Fatalf("expected ErrCancelled, got %v", err)
	}
}
