// Neural: train a small multi-layer perceptron with every dense layer's
// forward and backward pass running as distributed multiplications — the
// "deep neural network" entry of the paper's §1 application list. The
// target is a noisy nonlinear function; watch the full-batch loss fall.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"

	"distme"
	"distme/internal/matrix"
	"distme/internal/metrics"
	"distme/internal/ml"
)

func main() {
	cfg := distme.LaptopCluster()
	cfg.LocalWorkers = runtime.GOMAXPROCS(0)
	eng, err := distme.NewEngine(distme.EngineConfig{Cluster: cfg})
	if err != nil {
		log.Fatal(err)
	}

	// Synthetic regression task: y = ‖relu(x)‖₁ + noise over 4 features.
	const samples, features = 256, 4
	rng := rand.New(rand.NewSource(42))
	xd := matrix.NewDense(samples, features)
	yd := matrix.NewDense(samples, 1)
	for i := 0; i < samples; i++ {
		var s float64
		for j := 0; j < features; j++ {
			v := rng.NormFloat64()
			xd.Set(i, j, v)
			if v > 0 {
				s += v
			}
		}
		yd.Set(i, 0, s+0.01*rng.NormFloat64())
	}
	x := distme.FromDense(xd, 32)
	y := distme.FromDense(yd, 32)

	res, err := ml.TrainMLP(eng, x, y, ml.MLPOptions{
		Hidden:       []int{16, 8},
		LearningRate: 0.02,
		Epochs:       150,
		Seed:         42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training a 4→16→8→1 ReLU network, full-batch gradient descent:")
	for i := 0; i < len(res.Losses); i += 25 {
		fmt.Printf("  epoch %3d: mse = %.5f\n", i+1, res.Losses[i])
	}
	fmt.Printf("  epoch %3d: mse = %.5f\n", len(res.Losses), res.Losses[len(res.Losses)-1])

	pred, err := ml.PredictMLP(eng, x, res.Weights)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsample predictions (y / ŷ): ")
	for i := 0; i < 4; i++ {
		fmt.Printf("%.2f/%.2f  ", y.At(i, 0), pred.At(i, 0))
	}
	fmt.Println()
	fmt.Printf("total shuffle across training: %s\n",
		metrics.FormatBytes(eng.Recorder().CommunicationBytes()))
}
