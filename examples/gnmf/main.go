// GNMF collaborative filtering: factorize a Netflix-shaped rating matrix
// V ≈ W×H with the multiplicative updates of the paper's Appendix A, the
// workload of Figure 8. The rating data is a synthetic stand-in with the
// real dataset's Table 3 dimensions and density (scaled for a laptop).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"time"

	"distme"
	"distme/internal/metrics"
)

func main() {
	// Netflix at 0.4% scale: ≈1920 users × 71 items, density preserved.
	scaled := distme.Netflix.Scaled(0.004)
	rng := rand.New(rand.NewSource(7))
	v := scaled.RatingMatrix(rng, 32)
	fmt.Printf("%s: %d users × %d items, %d ratings (density %.4f)\n",
		scaled.Name, v.Rows, v.Cols, v.NNZ(), v.Sparsity())

	cfg := distme.LaptopCluster()
	cfg.LocalWorkers = runtime.GOMAXPROCS(0)
	eng, err := distme.NewEngine(distme.EngineConfig{
		Cluster: cfg,
		// Track layouts so V's partitioning is reused across iterations —
		// the matrix-dependency optimization DistME shares with DMac.
		TrackLayouts: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	res, err := distme.GNMF(eng, v, distme.GNMFOptions{
		Rank:           8,
		Iterations:     10,
		Seed:           7,
		TrackObjective: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("10 iterations in %v\n", time.Since(start).Round(time.Millisecond))
	for i, obj := range res.Objectives {
		fmt.Printf("  iteration %2d: ‖V − W·H‖F = %.4f\n", i+1, obj)
	}
	fmt.Printf("W: %v\nH: %v\n", res.W, res.H)
	fmt.Printf("total shuffle: %s\n", metrics.FormatBytes(eng.Recorder().CommunicationBytes()))

	// Predict a rating: the (user, item) entry of W×H.
	w, h := res.W, res.H
	var pred float64
	for r := 0; r < w.Cols; r++ {
		pred += w.At(0, r) * h.At(r, 0)
	}
	fmt.Printf("predicted rating for (user 0, item 0): %.4f (observed %.4f)\n", pred, v.At(0, 0))
}
