// Observe: run one traced multiply, walk the resulting span tree, and write
// a Chrome trace_event timeline — the five-minute tour of the observability
// surface documented in docs/OBSERVABILITY.md.
//
// Load trace.json into chrome://tracing or https://ui.perfetto.dev to see
// the repartition / local-multiply / aggregation phases, one task span per
// cuboid, and (with UseGPU) the device timeline grafted underneath.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"sort"
	"strings"

	"distme"
)

func main() {
	cfg := distme.LaptopCluster()
	cfg.LocalWorkers = runtime.GOMAXPROCS(0)

	// A tracer on the engine config records a span tree per multiply;
	// without one, tracing is off and costs nothing.
	tracer := distme.NewTracer()
	eng, err := distme.NewEngine(distme.EngineConfig{
		Cluster: cfg,
		UseGPU:  true,
		Tracer:  tracer,
	})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1))
	a := distme.RandomDense(rng, 768, 768, 64)
	b := distme.RandomDense(rng, 768, 768, 64)

	_, report, err := eng.MultiplyOpt(a, b, distme.MulOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Report.Trace holds just this multiply's spans, already snapshotted.
	tr := report.Trace
	fmt.Printf("multiply %v (P,Q,R)=%v recorded %d spans\n",
		report.Method, report.Params, len(tr.Spans))

	// Group spans by name to see where the time went — the same numbers the
	// Chrome timeline shows visually. Device spans are named per block
	// ("h2d A(3,1)", "kernel t4 sub(0,2,1)"), so bucket those by their
	// operation prefix instead.
	type bucket struct {
		name  string
		n     int
		total float64
	}
	byName := map[string]*bucket{}
	for _, s := range tr.Spans {
		name := s.Name
		if s.Kind.String() == "device" {
			name = strings.Fields(s.Name)[0] + " (device)"
		}
		b := byName[name]
		if b == nil {
			b = &bucket{name: name}
			byName[name] = b
		}
		b.n++
		b.total += s.End.Sub(s.Start).Seconds() * 1e3
	}
	buckets := make([]*bucket, 0, len(byName))
	for _, b := range byName {
		buckets = append(buckets, b)
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].total > buckets[j].total })
	fmt.Println("\nspan name                 count   total ms")
	for _, b := range buckets {
		fmt.Printf("%-24s %6d   %8.2f\n", b.name, b.n, b.total)
	}

	if err := tr.WriteFile("trace.json"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote trace.json — open it in chrome://tracing or ui.perfetto.dev")
}
