// GPU streaming: watch the §4 machinery — subcuboid optimization (Eq. 5–6),
// the serialized H2D copy engine, per-stream kernels, and the C-resident
// aggregation — by multiplying one cuboid under progressively tighter GPU
// memory budgets θg.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"distme"
	"distme/internal/gpu"
	"distme/internal/metrics"
)

func main() {
	rng := rand.New(rand.NewSource(9))
	a := distme.RandomDense(rng, 512, 2048, 64)
	b := distme.RandomDense(rng, 2048, 512, 64)
	s := distme.ShapeOf(a, b)
	fmt.Printf("cuboid: %d×%d×%d blocks; |A|=%s |B|=%s |C|=%s\n\n",
		s.I, s.K, s.J,
		metrics.FormatBytes(s.ABytes), metrics.FormatBytes(s.BBytes), metrics.FormatBytes(s.CBytes))

	fmt.Printf("%-12s %-12s %-12s %-12s %-12s\n", "θg", "iterations", "H2D", "D2H", "utilization")
	var ref *distme.Matrix
	for _, θg := range []int64{
		s.ABytes + s.BBytes + s.CBytes, // everything fits: 1 iteration
		(s.ABytes + s.BBytes) / 2,      // k-axis streaming engages
		(s.ABytes + s.BBytes) / 8,      // deep (1,1,R2) pipeline
	} {
		cfg := distme.LaptopCluster()
		cfg.TaskMemBytes = 1 << 30
		eng, err := distme.NewEngine(distme.EngineConfig{
			Cluster: cfg,
			UseGPU:  true,
			GPUSpec: distme.GPUSpec{
				MemPerTaskBytes: θg,
				PCIEBandwidth:   2e8, // bus-constrained, like the testbed
				Flops:           5e9,
				MaxStreams:      32,
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		// One cuboid: force (1,1,1) so the subcuboid layer does the work.
		c, report, err := eng.MultiplyOpt(a, b, distme.MulOptions{
			Method: distme.MethodCuboid,
			Params: distme.Params{P: 1, Q: 1, R: 1},
		})
		if err != nil {
			fmt.Printf("%-12s %v\n", metrics.FormatBytes(θg), err)
			continue
		}
		fmt.Printf("%-12s %-12d %-12s %-12s %.1f%%\n",
			metrics.FormatBytes(θg),
			report.GPU.Iterations,
			metrics.FormatBytes(report.GPU.H2DBytes),
			metrics.FormatBytes(report.GPU.D2HBytes),
			100*report.GPU.Utilization())
		if ref == nil {
			ref = c
		} else if !c.ToDense().EqualApprox(ref.ToDense(), 1e-9) {
			log.Fatal("streamed result differs from unstreamed")
		}
	}
	fmt.Println("\nD2H stays constant across budgets: the C buffer is resident on the")
	fmt.Println("device across the k-axis and crosses the bus exactly once (Eq. 6's")
	fmt.Println("missing R2 factor). Tighter θg only adds iterations, never wrong answers.")

	// Finally, the Figure 5(b) view: trace one task's stream timeline.
	cfg := distme.LaptopCluster()
	cfg.TaskMemBytes = 1 << 30
	eng, err := distme.NewEngine(distme.EngineConfig{
		Cluster: cfg,
		UseGPU:  true,
		GPUSpec: distme.GPUSpec{MemPerTaskBytes: 1 << 22, PCIEBandwidth: 2e8, Flops: 5e9, MaxStreams: 8},
	})
	if err != nil {
		log.Fatal(err)
	}
	eng.Device().EnableTrace(24)
	small := distme.RandomDense(rng, 128, 512, 64)
	smallB := distme.RandomDense(rng, 512, 128, 64)
	if _, _, err := eng.MultiplyOpt(small, smallB, distme.MulOptions{
		Method: distme.MethodCuboid, Params: distme.Params{P: 1, Q: 1, R: 1},
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfirst timeline events (the paper's Figure 5(b) view):")
	fmt.Print(gpu.FormatTrace(eng.Device().Trace()))
}
