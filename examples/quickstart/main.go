// Quickstart: create an engine, multiply two block matrices with the
// automatically optimized CuboidMM partitioning, and inspect the execution
// report — the five-minute tour of the public API.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"

	"distme"
	"distme/internal/metrics"
)

func main() {
	// A laptop-scale cluster: same 9×10 slot topology as the paper's
	// testbed, budgets sized for a single machine.
	cfg := distme.LaptopCluster()
	cfg.LocalWorkers = runtime.GOMAXPROCS(0)

	eng, err := distme.NewEngine(distme.EngineConfig{Cluster: cfg})
	if err != nil {
		log.Fatal(err)
	}

	// Two 1024×1024 dense matrices in 64×64 blocks.
	rng := rand.New(rand.NewSource(1))
	a := distme.RandomDense(rng, 1024, 1024, 64)
	b := distme.RandomDense(rng, 1024, 1024, 64)
	fmt.Println("A:", a)
	fmt.Println("B:", b)

	// Multiply with the default strategy: the engine optimizes (P,Q,R) for
	// the cluster's memory budget and slot count (the paper's Eq. 2), then
	// runs the three steps of distributed multiplication.
	c, report, err := eng.MultiplyOpt(a, b, distme.MulOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("C:", c)
	fmt.Printf("method: %v with (P,Q,R) = %v (%d tasks)\n",
		report.Method, report.Params, report.Params.Tasks())
	fmt.Printf("repartition shuffled: %s\n", metrics.FormatBytes(report.Comm.RepartitionBytes))
	fmt.Printf("aggregation shuffled: %s\n", metrics.FormatBytes(report.Comm.AggregationBytes))
	fmt.Printf("elapsed: %v\n", report.Elapsed.Round(1e6))

	// Spot-check one element against a direct dot product.
	var want float64
	for k := 0; k < a.Cols; k++ {
		want += a.At(3, k) * b.At(k, 5)
	}
	fmt.Printf("C[3,5] = %.6f (direct: %.6f)\n", c.At(3, 5), want)
}
