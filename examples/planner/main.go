// Planner: express the GNMF H-update as a declarative plan (the paper's
// §5 Scala-API path), watch the compiler push transposes to the leaves and
// share the Wᵀ subterm, then execute the optimized DAG on the engine.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"

	"distme"
)

func main() {
	// H' = H ∘ (Wᵀ·V) ⊘ (Wᵀ·W·H) — written naively, with a gratuitous
	// double transpose and a transposed product for the compiler to clean.
	wt := distme.PlanT(distme.PlanVar("W"))
	naive := distme.PlanEMul(
		distme.PlanT(distme.PlanT(distme.PlanVar("H"))), // (Hᵀ)ᵀ → H
		distme.PlanEDiv(
			distme.PlanT(distme.PlanMul(distme.PlanT(distme.PlanVar("V")), distme.PlanVar("W"))), // (Vᵀ·W)ᵀ → Wᵀ·V
			distme.PlanMul(distme.PlanMul(wt, distme.PlanVar("W")), distme.PlanVar("H")),
			1e-9,
		),
	)

	prog, err := distme.CompilePlan(naive)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("optimized physical plan (transposes pushed to leaves, Wᵀ shared):")
	fmt.Print(prog.Explain())

	cfg := distme.LaptopCluster()
	cfg.LocalWorkers = runtime.GOMAXPROCS(0)
	eng, err := distme.NewEngine(distme.EngineConfig{Cluster: cfg, TrackLayouts: true})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(21))
	v := distme.Netflix.Scaled(0.004).RatingMatrix(rng, 32)
	w := distme.RandomDense(rng, v.Rows, 8, 32)
	h := distme.RandomDense(rng, 8, v.Cols, 32)

	hNext, err := prog.Eval(eng, map[string]*distme.Matrix{"V": v, "W": w, "H": h})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nH' = %v\n", hNext)
	fmt.Printf("inputs the plan needs: %v\n", prog.Vars())
	fmt.Printf("nodes after CSE: %d (reused %d times)\n", prog.NumNodes(), prog.SharedNodes())

	// Full GNMF through compiled plans matches the direct implementation.
	res, err := distme.GNMFPlanned(eng, v, distme.GNMFOptions{Rank: 8, Iterations: 3, Seed: 21, TrackObjective: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nGNMF via compiled plans, objective per iteration:")
	for i, obj := range res.Objectives {
		fmt.Printf("  %d: %.4f\n", i+1, obj)
	}
}
