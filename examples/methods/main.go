// Methods comparison: run the same multiplication with BMM, CPMM, RMM and
// CuboidMM and compare the measured communication against the paper's
// Table 2 closed forms — the laptop-scale counterpart of Figure 6.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"time"

	"distme"
	"distme/internal/metrics"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	// A skewed shape (common large dimension) where the methods differ
	// sharply: A is 256×4096, B is 4096×256, blocks of 64.
	a := distme.RandomDense(rng, 256, 4096, 64)
	b := distme.RandomDense(rng, 4096, 256, 64)
	s := distme.ShapeOf(a, b)
	fmt.Printf("C = A×B with block grid %d×%d×%d\n\n", s.I, s.K, s.J)

	fmt.Printf("%-10s %-12s %-14s %-14s %-10s\n", "method", "(P,Q,R)", "repartition", "aggregation", "elapsed")
	var ref *distme.Matrix
	for _, method := range []distme.Method{distme.MethodBMM, distme.MethodCPMM, distme.MethodRMM, distme.MethodAuto} {
		cfg := distme.LaptopCluster()
		cfg.LocalWorkers = runtime.GOMAXPROCS(0)
		cfg.TaskMemBytes = 1 << 30
		eng, err := distme.NewEngine(distme.EngineConfig{Cluster: cfg})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		c, report, err := eng.MultiplyOpt(a, b, distme.MulOptions{Method: method})
		if err != nil {
			fmt.Printf("%-10v %v\n", method, err)
			continue
		}
		fmt.Printf("%-10v %-12v %-14s %-14s %-10v\n",
			method, report.Params,
			metrics.FormatBytes(report.Comm.RepartitionBytes),
			metrics.FormatBytes(report.Comm.AggregationBytes),
			time.Since(start).Round(time.Millisecond))
		if ref == nil {
			ref = c
		} else if !c.ToDense().EqualApprox(ref.ToDense(), 1e-9) {
			log.Fatalf("%v produced a different product", method)
		}
	}
	fmt.Println("\nall methods produced identical results — CuboidMM generalizes them (paper §3.1)")

	// The closed forms the engine's accounting matches byte-for-byte:
	fmt.Println("\nTable 2 closed forms evaluated on this shape:")
	for _, p := range []struct {
		name   string
		params distme.Params
	}{
		{"BMM", s.BMMParams()},
		{"CPMM", s.CPMMParams()},
		{"RMM", s.RMMParams()},
	} {
		fmt.Printf("  %-6s Cost%v = %s\n", p.name, p.params,
			metrics.FormatBytes(int64(s.CostBytes(p.params))))
	}
}
