// Elasticity: the same multiplication under a shrinking per-task memory
// budget θt. The optimizer answers with progressively finer cuboid
// partitionings — trading communication for feasibility — until even a
// single voxel cannot fit, which is the boundary where every method dies.
// This is the paper's core claim: CuboidMM spans the whole spectrum between
// the fast-but-fragile corner methods and the scalable-but-slow RMM.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"

	"distme"
	"distme/internal/metrics"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	a := distme.RandomDense(rng, 768, 768, 64)
	b := distme.RandomDense(rng, 768, 768, 64)
	s := distme.ShapeOf(a, b)
	fmt.Printf("shape: %d×%d×%d blocks, |A|=|B|=%s, |C|=%s\n\n",
		s.I, s.K, s.J, metrics.FormatBytes(s.ABytes), metrics.FormatBytes(s.CBytes))

	fmt.Printf("%-12s %-12s %-8s %-16s %s\n", "θt", "(P*,Q*,R*)", "tasks", "communication", "outcome")
	for θt := int64(16 << 20); θt >= 8<<10; θt /= 4 {
		cfg := distme.LaptopCluster()
		cfg.LocalWorkers = runtime.GOMAXPROCS(0)
		cfg.Nodes, cfg.TasksPerNode = 3, 3
		cfg.TaskMemBytes = θt
		eng, err := distme.NewEngine(distme.EngineConfig{Cluster: cfg})
		if err != nil {
			log.Fatal(err)
		}
		_, report, err := eng.MultiplyOpt(a, b, distme.MulOptions{})
		if err != nil {
			fmt.Printf("%-12s %-12s %-8s %-16s %v\n",
				metrics.FormatBytes(θt), "-", "-", "-", err)
			continue
		}
		fmt.Printf("%-12s %-12v %-8d %-16s ok\n",
			metrics.FormatBytes(θt), report.Params, report.Params.Tasks(),
			metrics.FormatBytes(report.Comm.CommunicationBytes()))
	}
	fmt.Println("\nshrinking θt forces more, smaller cuboids (higher P·Q·R) and more")
	fmt.Println("communication — elasticity is this trade made automatically (paper §3.2).")
}
