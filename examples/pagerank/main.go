// PageRank: run the damped power iteration over a synthetic web graph
// through the engine's distributed sparse×dense multiply — one of the
// intro's motivating linear-algebra applications, and a tall-thin product
// shape (n×n times n×1) that exercises a different corner of the optimizer
// than square GEMM.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"sort"

	"distme"
)

func main() {
	cfg := distme.LaptopCluster()
	cfg.LocalWorkers = runtime.GOMAXPROCS(0)
	eng, err := distme.NewEngine(distme.EngineConfig{Cluster: cfg})
	if err != nil {
		log.Fatal(err)
	}

	// A 512-node graph: mostly random sparse edges plus a few celebrity
	// nodes that everyone links to.
	const n = 512
	rng := rand.New(rand.NewSource(33))
	adj := distme.RandomSparse(rng, n, n, 64, 0.01)

	res, err := distme.PageRank(eng, adj, distme.PageRankOptions{
		Damping:       0.85,
		MaxIterations: 100,
		Tolerance:     1e-10,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged in %d iterations (final delta %.2e)\n", res.Iterations, res.Delta)

	type ranked struct {
		node int
		rank float64
	}
	var top []ranked
	for i := 0; i < n; i++ {
		top = append(top, ranked{i, res.Ranks.At(i, 0)})
	}
	sort.Slice(top, func(a, b int) bool { return top[a].rank > top[b].rank })
	fmt.Println("top 5 nodes:")
	for _, r := range top[:5] {
		fmt.Printf("  node %3d: %.6f\n", r.node, r.rank)
	}
	var sum float64
	for _, r := range top {
		sum += r.rank
	}
	fmt.Printf("rank mass: %.9f (should be 1)\n", sum)
}
