// Benchmarks, one per table and figure of the paper's evaluation. Each
// bench regenerates its experiment through internal/experiments — the same
// code the distme-bench command prints — so `go test -bench=.` exercises
// every reproduced result. Laptop-scale measured benches additionally report
// communication bytes as custom metrics.
package distme_test

import (
	"math/rand"
	"testing"

	"distme"
	"distme/internal/bmat"
	"distme/internal/cluster"
	"distme/internal/core"
	"distme/internal/experiments"
	"distme/internal/matrix"
	"distme/internal/workload"
)

// benchTables runs a registry experiment once per iteration and fails the
// bench if it errors.
func benchTables(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Run(id)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(tables) == 0 {
			b.Fatalf("%s: no tables", id)
		}
	}
}

// ---- Tables ----

func BenchmarkTable2Formulas(b *testing.B)  { benchTables(b, "table2") }
func BenchmarkTable3Datasets(b *testing.B)  { benchTables(b, "table3") }
func BenchmarkTable4Optimizer(b *testing.B) { benchTables(b, "table4") }
func BenchmarkTable5HPC(b *testing.B)       { benchTables(b, "table5") }

// ---- Figure 6: methods comparison ----

func BenchmarkFig6aGeneralElapsed(b *testing.B)   { benchTables(b, "fig6a") }
func BenchmarkFig6bCommonDimElapsed(b *testing.B) { benchTables(b, "fig6b") }
func BenchmarkFig6cTwoLargeElapsed(b *testing.B)  { benchTables(b, "fig6c") }
func BenchmarkFig6dGeneralComm(b *testing.B)      { benchTables(b, "fig6d") }
func BenchmarkFig6eCommonDimComm(b *testing.B)    { benchTables(b, "fig6e") }
func BenchmarkFig6fTwoLargeComm(b *testing.B)     { benchTables(b, "fig6f") }

// BenchmarkFig6Measured runs the real four-method comparison at laptop
// scale, once per family.
func BenchmarkFig6Measured(b *testing.B) {
	for _, fam := range []struct {
		name string
		f    workload.Family
	}{
		{"General", workload.General},
		{"CommonLargeDim", workload.CommonLargeDim},
		{"TwoLargeDims", workload.TwoLargeDims},
	} {
		b.Run(fam.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Fig6Measured(fam.f, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Figure 7: systems comparison ----

func BenchmarkFig7aSystemsGeneral(b *testing.B)   { benchTables(b, "fig7a") }
func BenchmarkFig7bSystemsCommonDim(b *testing.B) { benchTables(b, "fig7b") }
func BenchmarkFig7cSystemsTwoLarge(b *testing.B)  { benchTables(b, "fig7c") }
func BenchmarkFig7dSparseDense(b *testing.B)      { benchTables(b, "fig7d") }
func BenchmarkFig7eStepRatios(b *testing.B)       { benchTables(b, "fig7e") }
func BenchmarkFig7fSystemComm(b *testing.B)       { benchTables(b, "fig7f") }
func BenchmarkFig7gGPUUtilization(b *testing.B)   { benchTables(b, "fig7g") }
func BenchmarkFig7Measured(b *testing.B)          { benchTables(b, "fig7-measured") }

// ---- Figure 8: GNMF ----

func BenchmarkFig8aGNMFMovieLens(b *testing.B) { benchFig8(b, workload.MovieLens) }
func BenchmarkFig8bGNMFNetflix(b *testing.B)   { benchFig8(b, workload.Netflix) }
func BenchmarkFig8cGNMFYahooMusic(b *testing.B) {
	benchFig8(b, workload.YahooMusic)
}

func benchFig8(b *testing.B, d workload.Dataset) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		// Two iterations per bench rep keep the per-rep cost bounded; the
		// distme-bench command runs the full ten of Figure 8.
		if _, err := experiments.Fig8(d, 0.001, 2, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8dFactorDimension(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8d(0.001, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figure 9 (Appendix B): parameter sweep ----

func BenchmarkFig9ParamSweep(b *testing.B) { benchTables(b, "fig9") }

// ---- Measured micro-benchmarks of the core paths ----

// BenchmarkMultiplyMethods times one real distributed multiplication per
// method at laptop scale and reports shuffle bytes per op.
func BenchmarkMultiplyMethods(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := distme.RandomDense(rng, 512, 512, 64)
	m2 := distme.RandomDense(rng, 512, 512, 64)
	for _, method := range []struct {
		name string
		m    distme.Method
	}{
		{"BMM", distme.MethodBMM},
		{"CPMM", distme.MethodCPMM},
		{"RMM", distme.MethodRMM},
		{"CuboidAuto", distme.MethodAuto},
	} {
		b.Run(method.name, func(b *testing.B) {
			cfg := distme.LaptopCluster()
			cfg.TaskMemBytes = 1 << 30
			cfg.DiskCapacityBytes = 0
			eng, err := distme.NewEngine(distme.EngineConfig{Cluster: cfg})
			if err != nil {
				b.Fatal(err)
			}
			var comm int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, rep, err := eng.MultiplyOpt(a, m2, distme.MulOptions{Method: method.m})
				if err != nil {
					b.Fatal(err)
				}
				comm = rep.Comm.CommunicationBytes()
			}
			b.ReportMetric(float64(comm), "shuffle-B/op")
		})
	}
}

// BenchmarkMultiplyGPU compares the CPU and simulated-GPU local
// multiplication paths end to end.
func BenchmarkMultiplyGPU(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a := distme.RandomDense(rng, 512, 512, 64)
	m2 := distme.RandomDense(rng, 512, 512, 64)
	for _, gpuOn := range []bool{false, true} {
		name := "CPU"
		if gpuOn {
			name = "GPU"
		}
		b.Run(name, func(b *testing.B) {
			cfg := distme.LaptopCluster()
			cfg.TaskMemBytes = 1 << 30
			cfg.DiskCapacityBytes = 0
			eng, err := distme.NewEngine(distme.EngineConfig{Cluster: cfg, UseGPU: gpuOn})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := eng.MultiplyOpt(a, m2, distme.MulOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOptimizer times the Eq.(2) search at the paper's largest grid
// (100K×100K×100K in 1000-blocks ⇒ 100³ cells), which the paper reports at
// 0.3 s single-threaded.
func BenchmarkOptimizer(b *testing.B) {
	s := distme.Shape{
		I: 100, J: 100, K: 100,
		ABytes: 100_000 * 100_000 * 8,
		BBytes: 100_000 * 100_000 * 8,
		CBytes: 100_000 * 100_000 * 8,
	}
	cfg := distme.PaperCluster()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := distme.Optimize(s, cfg.TaskMemBytes, cfg.Slots()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGNMFIteration times one full GNMF iteration on a Netflix-shaped
// rating matrix.
func BenchmarkGNMFIteration(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	v := distme.Netflix.Scaled(0.004).RatingMatrix(rng, 32)
	cfg := distme.LaptopCluster()
	cfg.TaskMemBytes = 1 << 30
	cfg.DiskCapacityBytes = 0
	eng, err := distme.NewEngine(distme.EngineConfig{Cluster: cfg, TrackLayouts: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := distme.GNMF(eng, v, distme.GNMFOptions{Rank: 8, Iterations: 1, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Extension experiments (the paper's §8 future work, implemented) ----

func BenchmarkExtMultiGPU(b *testing.B)    { benchTables(b, "ext-multigpu") }
func BenchmarkExtLoadBalance(b *testing.B) { benchTables(b, "ext-balance") }
func BenchmarkExtCRMM(b *testing.B)        { benchTables(b, "ext-crmm") }

// BenchmarkPlanCompile times compiling + CSE of the GNMF update plans.
func BenchmarkPlanCompile(b *testing.B) {
	wt := distme.PlanT(distme.PlanVar("W"))
	expr := distme.PlanEMul(distme.PlanVar("H"),
		distme.PlanEDiv(
			distme.PlanMul(wt, distme.PlanVar("V")),
			distme.PlanMul(distme.PlanMul(wt, distme.PlanVar("W")), distme.PlanVar("H")),
			1e-9))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := distme.CompilePlan(expr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPageRank times the full power iteration on a 512-node graph.
func BenchmarkPageRank(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	adj := distme.RandomSparse(rng, 512, 512, 64, 0.01)
	cfg := distme.LaptopCluster()
	cfg.TaskMemBytes = 1 << 30
	cfg.DiskCapacityBytes = 0
	eng, err := distme.NewEngine(distme.EngineConfig{Cluster: cfg})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := distme.PageRank(eng, adj, distme.PageRankOptions{MaxIterations: 30}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtSparseCEstimate(b *testing.B) { benchTables(b, "ext-cest") }
func BenchmarkExtChainOrder(b *testing.B)      { benchTables(b, "ext-chain") }

// BenchmarkALSIteration times one alternating-least-squares sweep.
func BenchmarkALSIteration(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	v := distme.RandomDense(rng, 256, 256, 32)
	cfg := distme.LaptopCluster()
	cfg.TaskMemBytes = 1 << 30
	cfg.DiskCapacityBytes = 0
	eng, err := distme.NewEngine(distme.EngineConfig{Cluster: cfg})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := distme.ALS(eng, v, distme.ALSOptions{Rank: 8, Iterations: 1, Lambda: 0.1, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtMPSContention(b *testing.B) { benchTables(b, "ext-mps") }

func BenchmarkExtBlockSize(b *testing.B) { benchTables(b, "ext-blocksize") }

func BenchmarkExtWire(b *testing.B) { benchTables(b, "ext-wire") }

// ---- Local-multiply hot path (kernels + aggregation) ----
//
// Seed-vs-current regression comparisons live in internal/matrix's
// benchmark tests and internal/kernbench (distme-bench -kernels); the
// benches below track the current kernels and the end-to-end multiply at
// top level so `go test -bench=Kernel` from the repo root covers the hot
// path without package spelunking.

func BenchmarkKernelGemm(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	for _, size := range []int{128, 512} {
		x := matrix.RandomDense(rng, size, size)
		y := matrix.RandomDense(rng, size, size)
		c := matrix.NewDense(size, size)
		flops := 2 * float64(size) * float64(size) * float64(size)
		b.Run(benchSize(size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.Zero()
				matrix.Gemm(c, x, y)
			}
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(flops*float64(b.N)/sec/1e9, "GFLOPS")
			}
		})
	}
}

func BenchmarkKernelCSRMulDense(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	x := matrix.RandomSparse(rng, 2048, 2048, 0.01)
	y := matrix.RandomDense(rng, 2048, 128)
	c := matrix.NewDense(2048, 128)
	for i := 0; i < b.N; i++ {
		c.Zero()
		matrix.CSRMulDense(c, x, y)
	}
}

func BenchmarkKernelDenseMulCSC(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	x := matrix.RandomDense(rng, 512, 512)
	y := matrix.NewCSCFromCSR(matrix.RandomSparse(rng, 512, 512, 0.05))
	c := matrix.NewDense(512, 512)
	for i := 0; i < b.N; i++ {
		c.Zero()
		matrix.DenseMulCSC(c, x, y)
	}
}

func BenchmarkKernelCSRMulCSR(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	x := matrix.RandomSparse(rng, 512, 512, 0.05)
	y := matrix.RandomSparse(rng, 512, 512, 0.05)
	for i := 0; i < b.N; i++ {
		matrix.CSRMulCSR(x, y)
	}
}

// BenchmarkEndToEndAggregation times the whole 3-step executor at R>1 with
// the aggregation fan-out forced sequential vs. wide, so the driver-side
// merge cost is visible end to end.
func BenchmarkEndToEndAggregation(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	a := bmat.RandomDense(rng, 512, 512, 64)
	m2 := bmat.RandomDense(rng, 512, 512, 64)
	params := core.Params{P: 2, Q: 2, R: 4}
	for _, workers := range []int{1, 4} {
		b.Run("aggWorkers="+benchSize(workers), func(b *testing.B) {
			cfg := cluster.LaptopConfig()
			cfg.TaskMemBytes = 1 << 30
			cfg.DiskCapacityBytes = 0
			cl, err := cluster.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			env := core.Env{Cluster: cl, AggregationWorkers: workers}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.MultiplyCuboid(a, m2, params, env); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchSize(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
