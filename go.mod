module distme

go 1.22
