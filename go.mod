module distme

go 1.24
